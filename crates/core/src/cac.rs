//! The connection admission control algorithm (§5.3) and the network's
//! admission bookkeeping.
//!
//! Upon a request, the CAC:
//!
//! 1. computes the maximum available allocations
//!    `(H_S^{max_avai}, H_R^{max_avai})` from the rings' synchronous
//!    budgets (eqs. 26–27);
//! 2. rejects if even the maximum allocation cannot satisfy every
//!    deadline (eqs. 24–25);
//! 3. binary-searches along the line joining
//!    `(H_S^{min_abs}, H_R^{min_abs})` and the maximum point for the
//!    *minimum needed* allocation — the smallest point keeping all
//!    deadlines satisfied;
//! 4. binary-searches the segment above it for the *maximum needed*
//!    allocation — the smallest point at which every connection's delay
//!    already equals its value at the maximum allocation (eqs. 31–33):
//!    beyond it, extra bandwidth buys nothing;
//! 5. allocates `H = H^{min_need} + β (H^{max_need} − H^{min_need})`
//!    (eqs. 35–36) and admits.
//!
//! Monotonicity along the search line — the requesting connection's
//! delay is nonincreasing and existing connections' delays are
//! nondecreasing in the allocation scale (they only see the newcomer
//! through its burstiness at shared multiplexers) — is what makes both
//! searches correct; it follows from the convexity of the feasible
//! region (Theorems 3–4).

use crate::connection::{ActiveConnection, ConnectionId, ConnectionSpec};
use crate::delay::{
    evaluate_paths, CacheStats, CandidateOutcome, EvalCache, EvalConfig, EvalOutcome, Evaluator,
    PathInput, PathReport, ScreenedOutcome,
};
use crate::error::CacError;
use crate::incremental::{FastContext, FastPathStats, IncrementalState};
use crate::network::{Component, HetNetwork, RingId};
use crate::reconfig::{ReconfigPlan, ReconfigReport};
use crate::snapshot::{ConnectionSnapshot, StateSnapshot, SNAPSHOT_VERSION};
use crate::trace::{BindingConstraint, ConnectionTrace, DecisionTrace, ServerStage};
use hetnet_fddi::alloc::{AllocationKey, SyncAllocationTable};
use hetnet_fddi::frames;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_obs as obs;
use hetnet_traffic::units::Seconds;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Tuning parameters of the CAC.
#[derive(Clone, Debug)]
pub struct CacConfig {
    /// The allocation knob β ∈ [0, 1] of eqs. 35–36: 0 allocates the
    /// bare minimum, 1 the maximum useful amount. The paper finds
    /// β ∈ [0.4, 0.7] robust; 0.5 is the default.
    pub beta: f64,
    /// Iterations of each binary search along the allocation line.
    pub search_iterations: usize,
    /// Tolerance for the "maximum needed allocation" test. Eqs. 31–33
    /// define `H^{max_need}` as the smallest allocation whose delays
    /// *equal* those at the maximum; when delay curves saturate exactly
    /// (pure staircase effects) that point is found as-is, and when they
    /// keep creeping (burst-crossing times shift continuously with the
    /// quantum) the search settles for the point at which all but this
    /// fraction of the *achievable* improvement has been realized.
    pub equality_tolerance: f64,
    /// Minimum frame efficiency defining `H^{min_abs}` (§5.2: the
    /// allocation cannot be arbitrarily small or frame overheads swamp
    /// it).
    pub min_frame_efficiency: f64,
    /// End-to-end evaluation tuning.
    pub eval: EvalConfig,
}

impl Default for CacConfig {
    fn default() -> Self {
        Self {
            beta: 0.5,
            search_iterations: 14,
            equality_tolerance: 0.1,
            min_frame_efficiency: 0.9,
            eval: EvalConfig::default(),
        }
    }
}

impl CacConfig {
    /// A cheaper configuration for large simulation campaigns: fewer
    /// search iterations and the fast evaluation profile. Decisions are
    /// identical in kind, slightly coarser in the allocation split.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            search_iterations: 12,
            eval: EvalConfig::fast(),
            ..Self::default()
        }
    }

    /// A copy of this configuration with a different β.
    ///
    /// # Panics
    ///
    /// Panics unless `beta ∈ [0, 1]`.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        self.beta = beta;
        self
    }
}

/// How the admission engine picks the `(H_S, H_R)` allocation for a
/// request.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum AllocationPolicy {
    /// The paper's β-CAC line search (§5.3): find the minimum and
    /// maximum *needed* allocations and interpolate with β.
    #[default]
    BetaSearch,
    /// Admit at exactly this allocation pair if (and only if) every
    /// deadline holds there — no searching, no β. Used by the baseline
    /// policies and by tests.
    Fixed {
        /// Synchronous bandwidth to hold on the source ring.
        h_s: SyncBandwidth,
        /// Synchronous bandwidth to hold on the destination ring.
        h_r: SyncBandwidth,
    },
}

/// Everything an admission request needs besides the
/// [`ConnectionSpec`] itself: CAC tuning plus the allocation policy.
///
/// This is the single entry point's option block —
/// [`NetworkState::admit`] subsumes the legacy
/// [`NetworkState::request`] / [`NetworkState::request_fixed`] pair.
#[derive(Clone, Debug, Default)]
pub struct AdmissionOptions {
    /// CAC tuning parameters (β, search depth, evaluation profile).
    pub cac: CacConfig,
    /// Allocation policy: β-search or a fixed pair.
    pub allocation: AllocationPolicy,
}

impl AdmissionOptions {
    /// β-search admission (the paper's algorithm) under `cac`.
    #[must_use]
    pub fn beta_search(cac: CacConfig) -> Self {
        Self {
            cac,
            allocation: AllocationPolicy::BetaSearch,
        }
    }

    /// Fixed-allocation admission at `(h_s, h_r)` under `cac`.
    #[must_use]
    pub fn fixed(cac: CacConfig, h_s: SyncBandwidth, h_r: SyncBandwidth) -> Self {
        Self {
            cac,
            allocation: AllocationPolicy::Fixed { h_s, h_r },
        }
    }
}

impl From<CacConfig> for AdmissionOptions {
    /// A bare [`CacConfig`] means β-search, the common case.
    fn from(cac: CacConfig) -> Self {
        Self::beta_search(cac)
    }
}

/// One completed admission decision, as seen by a
/// [`DecisionObserver`].
#[derive(Debug)]
pub struct DecisionRecord<'a> {
    /// 0-based sequence number (counts every completed
    /// [`NetworkState::admit`], admitted or rejected).
    pub seq: u64,
    /// The state's logical clock at decision time
    /// ([`NetworkState::set_clock`]); `Seconds::ZERO` if never set.
    pub at: Seconds,
    /// The request that was decided.
    pub spec: &'a ConnectionSpec,
    /// The verdict.
    pub decision: &'a Decision,
    /// Evaluator cache statistics of this decision's line searches
    /// (all-zero for fixed-allocation admissions, which run a single
    /// uncached evaluation).
    pub cache: CacheStats,
    /// Fast-ladder probe counters of this decision's β search
    /// (all-zero when the fast path is off or the allocation is fixed).
    pub fast_path: FastPathStats,
    /// The decision's structured explanation — present iff
    /// [`NetworkState::set_decision_tracing`] is on.
    pub trace: Option<&'a DecisionTrace>,
}

/// Callback invoked after every completed admission decision — the
/// metrics hook the service layer builds its audit log on. Observers
/// see rejections too; errors (`Err` from [`NetworkState::admit`])
/// produce no record because no decision was reached.
pub trait DecisionObserver: Send {
    /// Called once per decision, in decision order.
    fn on_decision(&mut self, record: &DecisionRecord<'_>);

    /// Called once per completed [`NetworkState::reconfigure`], which
    /// consumes one decision sequence number (`seq`) like an admission
    /// does — observers tracking the gap-free sequence advance here
    /// too. The default does nothing.
    fn on_reconfig(&mut self, seq: u64, report: &ReconfigReport) {
        let _ = (seq, report);
    }
}

/// Why a request was rejected.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The source ring cannot even provide the minimum absolute
    /// allocation.
    SourceBandwidthExhausted {
        /// Synchronous time still available.
        available: Seconds,
        /// The minimum absolute requirement.
        required: Seconds,
    },
    /// The destination ring cannot provide the minimum absolute
    /// allocation.
    DestBandwidthExhausted {
        /// Synchronous time still available.
        available: Seconds,
        /// The minimum absolute requirement.
        required: Seconds,
    },
    /// Even `(H_S^{max_avai}, H_R^{max_avai})` violates some deadline or
    /// leaves a server unstable (the feasible region is empty,
    /// Theorem 4).
    InfeasibleAtMaximum {
        /// Human-readable detail (which constraint failed).
        detail: String,
    },
    /// A component on the request's path is down
    /// ([`NetworkState::set_component_down`]): no allocation exists
    /// until it is restored.
    ComponentUnavailable {
        /// The failed component.
        component: Component,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SourceBandwidthExhausted {
                available,
                required,
            } => write!(
                f,
                "source ring bandwidth exhausted (available {available}, need {required})"
            ),
            Self::DestBandwidthExhausted {
                available,
                required,
            } => write!(
                f,
                "destination ring bandwidth exhausted (available {available}, need {required})"
            ),
            Self::InfeasibleAtMaximum { detail } => {
                write!(f, "infeasible even at maximum allocation: {detail}")
            }
            Self::ComponentUnavailable { component } => {
                write!(f, "component {component} is down on the request's path")
            }
        }
    }
}

/// The CAC's verdict on a request.
#[derive(Clone, Debug)]
pub enum Decision {
    /// Admitted with the given allocations.
    Admitted {
        /// Identifier of the new connection.
        id: ConnectionId,
        /// Synchronous bandwidth allocated on the source ring.
        h_s: SyncBandwidth,
        /// Synchronous bandwidth allocated on the destination ring.
        h_r: SyncBandwidth,
        /// The connection's end-to-end worst-case delay at admission.
        delay_bound: Seconds,
    },
    /// Rejected; no state was changed.
    Rejected(RejectReason),
}

impl Decision {
    /// Whether the request was admitted.
    #[must_use]
    pub fn is_admitted(&self) -> bool {
        matches!(self, Self::Admitted { .. })
    }
}

/// What [`NetworkState::set_component_down`] tore down: the evicted
/// connections (with their full specs, so the caller can park and
/// later re-admit them) and the synchronous bandwidth reclaimed.
#[derive(Debug)]
pub struct TeardownReport {
    /// The component that failed.
    pub component: Component,
    /// `true` when the component was already down (nothing new torn).
    pub already_down: bool,
    /// The evicted connections, in admission order.
    pub torn: Vec<ActiveConnection>,
    /// Total `H_S` (source-ring synchronous time per rotation)
    /// reclaimed across the evictions.
    pub reclaimed_s: Seconds,
    /// Total `H_R` reclaimed across the evictions.
    pub reclaimed_r: Seconds,
}

/// Entry caps applied to a persisted evaluator cache at the start of
/// each search: when any tier exceeds its cap the whole cache is
/// cleared. Caps bound memory only — cache hits return exactly what the
/// miss path would compute, so decisions are identical at any setting.
/// Callers working repeatedly over large active subsets (the sharded
/// engine's closure states) raise them so a single big decision does
/// not evict the working set every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheCaps {
    /// Max stage-1 (source MAC analysis) entries.
    pub stage1: usize,
    /// Max per-multiplexer analysis entries.
    pub mux: usize,
    /// Max receive-side analysis entries.
    pub receive: usize,
}

impl Default for EvalCacheCaps {
    fn default() -> Self {
        Self {
            stage1: 1024,
            mux: 8192,
            receive: 8192,
        }
    }
}

/// The live state of the network: active connections and per-ring
/// synchronous-bandwidth tables.
pub struct NetworkState {
    /// The immutable topology, shareable across states: the sharded
    /// engine builds one short-lived scoped state per decision, and an
    /// `Arc` makes that construction O(active subset) instead of a
    /// deep topology clone.
    net: Arc<HetNetwork>,
    active: Vec<ActiveConnection>,
    tables: Vec<SyncAllocationTable>,
    next_id: u64,
    last_cache_stats: Option<CacheStats>,
    persist_cache: bool,
    cache_caps: EvalCacheCaps,
    /// Evaluator cache carried across [`NetworkState::admit`] calls
    /// when persistence is on. Entries are always sound (keys capture
    /// everything a result depends on — envelope identity, allocations,
    /// and the full transform chain), so with persistence on the cache
    /// survives admissions and releases too; an entry cap at the start
    /// of each search bounds its memory. With persistence off it is
    /// dropped whenever the active set changes.
    eval_cache: Option<EvalCache>,
    /// Whether β-search probes may be decided by the fast ladder
    /// ([`NetworkState::set_fast_path`]).
    fast_path: bool,
    /// Per-server incremental admission state, maintained by deltas on
    /// admit/release/teardown while the fast path is enabled.
    incremental: Option<IncrementalState>,
    last_fast_stats: Option<FastPathStats>,
    /// Components currently marked down by fault injection; requests
    /// whose path crosses one are rejected without evaluation.
    down: BTreeSet<Component>,
    /// Logical event clock stamped onto [`DecisionRecord`]s.
    clock: Seconds,
    /// Completed decisions (admit or reject) so far.
    decision_seq: u64,
    observer: Option<Box<dyn DecisionObserver>>,
    /// Whether [`NetworkState::admit`] assembles a [`DecisionTrace`]
    /// per decision. Off by default: the hot path stays allocation-free.
    trace_decisions: bool,
    last_trace: Option<DecisionTrace>,
}

/// The trace ingredients an admission path hands back to
/// [`NetworkState::admit`] (which stamps seq/clock/cache onto them).
/// Built only when decision tracing is on.
struct TraceParts {
    allocation: Option<(SyncBandwidth, SyncBandwidth)>,
    connections: Vec<ConnectionTrace>,
    binding: Option<BindingConstraint>,
}

/// What a fixed-allocation feasibility check found.
enum FixedCheck {
    /// Every deadline holds; per-connection reports, candidate last.
    Feasible(Vec<PathReport>),
    /// No finite bound exists (some server unstable), verbatim detail.
    Unstable(String),
    /// Bounds exist but a deadline is missed: `victim` indexes the
    /// first violated active connection (`None` = the candidate).
    DeadlineMiss {
        victim: Option<usize>,
        reports: Vec<PathReport>,
    },
}

/// The [`BindingConstraint`] for a path that missed its deadline.
fn deadline_binding(
    connection: Option<ConnectionId>,
    report: &PathReport,
    deadline: Seconds,
) -> BindingConstraint {
    BindingConstraint::DeadlineExceeded {
        connection,
        stage: ServerStage::dominant(report),
        delay: report.total,
        deadline,
        excess: report.total - deadline,
    }
}

impl fmt::Debug for NetworkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkState")
            .field("net", &self.net)
            .field("active", &self.active)
            .field("tables", &self.tables)
            .field("next_id", &self.next_id)
            .field("last_cache_stats", &self.last_cache_stats)
            .field("persist_cache", &self.persist_cache)
            .field("fast_path", &self.fast_path)
            .field("down", &self.down)
            .field("clock", &self.clock)
            .field("decision_seq", &self.decision_seq)
            .field("observer", &self.observer.as_ref().map(|_| "<hook>"))
            .field("trace_decisions", &self.trace_decisions)
            .finish()
    }
}

impl NetworkState {
    /// A fresh state with no connections.
    #[must_use]
    pub fn new(net: HetNetwork) -> Self {
        Self::new_shared(Arc::new(net))
    }

    /// A fresh state over an already-shared topology. Equivalent to
    /// [`NetworkState::new`] but avoids duplicating the (route-table
    /// bearing) [`HetNetwork`] when many states are built over the same
    /// topology, as the sharded engine does per decision.
    #[must_use]
    pub fn new_shared(net: Arc<HetNetwork>) -> Self {
        let tables = vec![SyncAllocationTable::new(); net.rings().len()];
        Self {
            net,
            active: Vec::new(),
            tables,
            next_id: 0,
            last_cache_stats: None,
            persist_cache: false,
            cache_caps: EvalCacheCaps::default(),
            eval_cache: None,
            fast_path: false,
            incremental: None,
            last_fast_stats: None,
            down: BTreeSet::new(),
            clock: Seconds::ZERO,
            decision_seq: 0,
            observer: None,
            trace_decisions: false,
            last_trace: None,
        }
    }

    /// Turns per-decision [`DecisionTrace`] assembly on or off. When
    /// on, every completed [`NetworkState::admit`] stores its trace
    /// ([`NetworkState::last_decision_trace`]) and hands it to the
    /// installed [`DecisionObserver`]; when off (the default) the
    /// admission path builds nothing.
    pub fn set_decision_tracing(&mut self, enabled: bool) {
        self.trace_decisions = enabled;
        if !enabled {
            self.last_trace = None;
        }
    }

    /// The trace of the most recent completed decision, if tracing is
    /// on and at least one decision has completed since.
    #[must_use]
    pub fn last_decision_trace(&self) -> Option<&DecisionTrace> {
        self.last_trace.as_ref()
    }

    /// Sets the logical clock stamped onto subsequent
    /// [`DecisionRecord`]s. Event-driven callers (the service layer)
    /// advance this to the event timestamp before each
    /// [`NetworkState::admit`]; it has no effect on decisions.
    pub fn set_clock(&mut self, now: Seconds) {
        self.clock = now;
    }

    /// The current logical clock.
    #[must_use]
    pub fn clock(&self) -> Seconds {
        self.clock
    }

    /// Number of completed admission decisions (admitted or rejected)
    /// since construction.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decision_seq
    }

    /// Installs (or clears) the per-decision metrics callback. The
    /// observer sees every completed decision in order; it cannot
    /// influence them.
    pub fn set_observer(&mut self, observer: Option<Box<dyn DecisionObserver>>) {
        self.observer = observer;
    }

    /// Removes and returns the installed observer, if any.
    #[must_use]
    pub fn take_observer(&mut self) -> Option<Box<dyn DecisionObserver>> {
        self.observer.take()
    }

    /// Enables (or disables) carrying the evaluator's caches across
    /// [`NetworkState::admit`] calls — including across admissions,
    /// releases, and teardowns: cache keys capture everything a result
    /// depends on (envelope identity, allocation bits, and the exact
    /// transform chain a flow went through), so entries stay sound when
    /// the active set changes and simply stop being hit once their
    /// flows are gone. An entry cap at the start of each search bounds
    /// the memory. Decisions are bit-identical either way, because
    /// cache hits return exactly what the miss path would compute.
    pub fn persist_eval_cache(&mut self, enabled: bool) {
        self.persist_cache = enabled;
        if !enabled {
            self.eval_cache = None;
        }
    }

    /// Enables (or disables) the incremental fast path: with it on, the
    /// β bisection's boolean feasible-at-λ probes may be decided by the
    /// closed-form decision ladder ([`crate::incremental`]) instead of
    /// the dense evaluator, and the per-server
    /// [`IncrementalState`](crate::incremental) is maintained by deltas
    /// across admissions, releases, and teardowns. Every quantity that
    /// reaches a decision, a trace, or an allocation table still comes
    /// from the dense evaluator, so decisions are bit-identical with
    /// the fast path on or off.
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] if the per-server state cannot be built
    /// from the current active set (unrouted rings — impossible for
    /// connections this state admitted itself).
    pub fn set_fast_path(&mut self, enabled: bool) -> Result<(), CacError> {
        self.fast_path = enabled;
        self.incremental = if enabled {
            Some(IncrementalState::rebuild(&self.net, &self.active)?)
        } else {
            None
        };
        Ok(())
    }

    /// Whether the incremental fast path is enabled.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Fast-path probe counters of the most recent β-search
    /// [`NetworkState::admit`] call (`None` before the first; all-zero
    /// when the fast path is disabled).
    #[must_use]
    pub fn last_fast_path_stats(&self) -> Option<FastPathStats> {
        self.last_fast_stats
    }

    /// Cache hit/miss counters of the evaluator used by the most recent
    /// β-search [`NetworkState::admit`] call (`None` before the first).
    /// Benchmarks and the experiment harness use this to report how much
    /// of each admission's line search was served incrementally.
    #[must_use]
    pub fn last_cache_stats(&self) -> Option<CacheStats> {
        self.last_cache_stats
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &HetNetwork {
        &self.net
    }

    /// The shared handle to the underlying network, for building
    /// further states over the same topology without cloning it.
    #[must_use]
    pub fn shared_network(&self) -> &Arc<HetNetwork> {
        &self.net
    }

    /// Replaces the entry caps applied to a persisted evaluator cache
    /// (see [`EvalCacheCaps`]). Decision-neutral.
    pub fn set_cache_caps(&mut self, caps: EvalCacheCaps) {
        self.cache_caps = caps;
    }

    /// Removes and returns the persisted evaluator cache, if any. The
    /// sharded engine moves one long-lived cache between the short-lived
    /// scoped states a worker builds; keys are content-addressed, so a
    /// cache is sound under any active set over the same topology.
    #[must_use]
    pub fn take_eval_cache(&mut self) -> Option<EvalCache> {
        self.eval_cache.take()
    }

    /// Installs a previously taken evaluator cache (see
    /// [`NetworkState::take_eval_cache`]). Only meaningful with
    /// [`NetworkState::persist_eval_cache`] enabled, which governs
    /// whether the cache is carried forward after the next decision.
    pub fn inject_eval_cache(&mut self, cache: EvalCache) {
        self.eval_cache = Some(cache);
    }

    /// Currently active connections.
    #[must_use]
    pub fn active(&self) -> &[ActiveConnection] {
        &self.active
    }

    /// Whether `host` currently originates a connection (§3.2 assumes at
    /// most one per host).
    #[must_use]
    pub fn host_busy(&self, host: crate::network::HostId) -> bool {
        self.active.iter().any(|c| c.spec.source == host)
    }

    /// Synchronous time still allocatable on a ring.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is out of range.
    #[must_use]
    pub fn available_on(&self, ring: impl Into<RingId>) -> Seconds {
        let ring = ring.into();
        self.tables[ring.0].available(self.net.ring(ring))
    }

    /// Builds the evaluation inputs for all active connections, plus an
    /// optional candidate at a trial allocation.
    fn inputs_with(
        &self,
        candidate: Option<(&ConnectionSpec, SyncBandwidth, SyncBandwidth)>,
    ) -> Vec<PathInput> {
        let mut v: Vec<PathInput> = self
            .active
            .iter()
            .map(|c| PathInput {
                source: c.spec.source,
                dest: c.spec.dest,
                envelope: Arc::clone(&c.spec.envelope),
                h_s: c.h_s,
                h_r: c.h_r,
                class: c.spec.class,
            })
            .collect();
        if let Some((spec, hs, hr)) = candidate {
            v.push(PathInput {
                source: spec.source,
                dest: spec.dest,
                envelope: Arc::clone(&spec.envelope),
                h_s: hs,
                h_r: hr,
                class: spec.class,
            });
        }
        v
    }

    /// Evaluates all deadlines with the candidate at `(hs, hr)`,
    /// keeping enough detail to attribute a failure: *which* path first
    /// missed its deadline, or why no bound exists at all.
    fn feasible_with(
        &self,
        spec: &ConnectionSpec,
        hs: SyncBandwidth,
        hr: SyncBandwidth,
        cfg: &CacConfig,
    ) -> Result<FixedCheck, CacError> {
        let inputs = self.inputs_with(Some((spec, hs, hr)));
        match evaluate_paths(&self.net, &inputs, &cfg.eval)? {
            EvalOutcome::Infeasible(detail) => Ok(FixedCheck::Unstable(detail)),
            EvalOutcome::Feasible(reports) => {
                for (i, c) in self.active.iter().enumerate() {
                    if reports[i].total > c.spec.deadline {
                        return Ok(FixedCheck::DeadlineMiss {
                            victim: Some(i),
                            reports,
                        });
                    }
                }
                if reports.last().expect("candidate included").total > spec.deadline {
                    return Ok(FixedCheck::DeadlineMiss {
                        victim: None,
                        reports,
                    });
                }
                Ok(FixedCheck::Feasible(reports))
            }
        }
    }

    /// Trace entries for `reports` evaluated against the current active
    /// set plus the not-yet-admitted candidate as the last path.
    fn traces_with_candidate(
        &self,
        reports: &[PathReport],
        spec: &ConnectionSpec,
    ) -> Vec<ConnectionTrace> {
        let mut v: Vec<ConnectionTrace> = self
            .active
            .iter()
            .zip(reports)
            .map(|(c, r)| ConnectionTrace::new(Some(c.id), *r, c.spec.deadline))
            .collect();
        if let Some(last) = reports.get(self.active.len()) {
            v.push(ConnectionTrace::new(None, *last, spec.deadline));
        }
        v
    }

    /// Trace entries for `reports` once the candidate has been
    /// committed (the active set already includes it, last, with its
    /// real id).
    fn traces_committed(&self, reports: &[PathReport]) -> Vec<ConnectionTrace> {
        self.active
            .iter()
            .zip(reports)
            .map(|(c, r)| ConnectionTrace::new(Some(c.id), *r, c.spec.deadline))
            .collect()
    }

    /// Decides one admission request under `opts` — the single entry
    /// point subsuming the legacy [`NetworkState::request`] (β-search)
    /// and [`NetworkState::request_fixed`] (fixed pair) split. On
    /// admission, the allocations are recorded and the connection
    /// becomes active; the installed [`DecisionObserver`], if any, sees
    /// the decision either way.
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] for malformed requests or networks;
    /// resource/deadline failures are reported as
    /// [`Decision::Rejected`].
    pub fn admit(
        &mut self,
        spec: ConnectionSpec,
        opts: &AdmissionOptions,
    ) -> Result<Decision, CacError> {
        let _admit_span = obs::span("admit");
        // Keep a (cheap: Arc + copies) clone of the spec for the
        // observer; the impls consume `spec` on admission.
        let observed_spec = self.observer.is_some().then(|| spec.clone());
        let result = match opts.allocation {
            AllocationPolicy::BetaSearch => self.admit_beta(spec, &opts.cac),
            AllocationPolicy::Fixed { h_s, h_r } => self.admit_fixed(spec, h_s, h_r, &opts.cac),
        };
        let (decision, parts) = match result {
            Ok(pair) => pair,
            Err(e) => {
                obs::event("admit_error", &[("kind", obs::FieldValue::Str(e.kind()))]);
                return Err(e);
            }
        };
        let seq = self.decision_seq;
        self.decision_seq += 1;
        let cache = match opts.allocation {
            AllocationPolicy::BetaSearch => self.last_cache_stats.unwrap_or_default(),
            AllocationPolicy::Fixed { .. } => CacheStats::default(),
        };
        let fast_path = match opts.allocation {
            AllocationPolicy::BetaSearch => self.last_fast_stats.unwrap_or_default(),
            AllocationPolicy::Fixed { .. } => FastPathStats::default(),
        };
        // `parts` is `Some` iff tracing is on, so a disabled state never
        // retains a stale trace.
        self.last_trace = parts.map(|p| DecisionTrace {
            seq,
            at: self.clock,
            admitted: decision.is_admitted(),
            scheduler: self.net.scheduler().to_string(),
            allocation: p.allocation,
            connections: p.connections,
            binding: p.binding,
            cache,
            fast_path,
        });
        obs::event(
            "decision",
            &[
                ("seq", obs::FieldValue::U64(seq)),
                ("admitted", obs::FieldValue::Bool(decision.is_admitted())),
                (
                    "binding",
                    obs::FieldValue::Str(
                        self.last_trace
                            .as_ref()
                            .and_then(|t| t.binding.as_ref())
                            .map_or("", BindingConstraint::kind),
                    ),
                ),
            ],
        );
        if let Some(spec) = observed_spec {
            if let Some(mut hook) = self.observer.take() {
                hook.on_decision(&DecisionRecord {
                    seq,
                    at: self.clock,
                    spec: &spec,
                    decision: &decision,
                    cache,
                    fast_path,
                    trace: self.last_trace.as_ref(),
                });
                self.observer = Some(hook);
            }
        }
        Ok(decision)
    }

    /// The CAC of §5.3: β-search along the allocation line.
    fn admit_beta(
        &mut self,
        spec: ConnectionSpec,
        cfg: &CacConfig,
    ) -> Result<(Decision, Option<TraceParts>), CacError> {
        self.validate_spec(&spec)?;
        let tracing = self.trace_decisions;
        if let Some(component) = self.down_on_path(&spec)? {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::ComponentDown { component }),
            });
            return Ok((
                Decision::Rejected(RejectReason::ComponentUnavailable { component }),
                parts,
            ));
        }
        let ring_s = self.net.ring(spec.source.ring);
        let ring_r = self.net.ring(spec.dest.ring);

        // Step 1: bounds of the allocation line.
        let min_s = frames::min_allocation(ring_s, cfg.min_frame_efficiency);
        let min_r = frames::min_allocation(ring_r, cfg.min_frame_efficiency);
        let avail_s = self.available_on(spec.source.ring);
        let avail_r = self.available_on(spec.dest.ring);
        if avail_s < min_s.per_rotation() {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::SourceBandwidth {
                    ring: spec.source.ring.into(),
                    available: avail_s,
                    required: min_s.per_rotation(),
                }),
            });
            return Ok((
                Decision::Rejected(RejectReason::SourceBandwidthExhausted {
                    available: avail_s,
                    required: min_s.per_rotation(),
                }),
                parts,
            ));
        }
        if avail_r < min_r.per_rotation() {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::DestBandwidth {
                    ring: spec.dest.ring.into(),
                    available: avail_r,
                    required: min_r.per_rotation(),
                }),
            });
            return Ok((
                Decision::Rejected(RejectReason::DestBandwidthExhausted {
                    available: avail_r,
                    required: min_r.per_rotation(),
                }),
                parts,
            ));
        }
        let max_s = SyncBandwidth::new(avail_s);
        let max_r = SyncBandwidth::new(avail_r);
        let at = |lambda: f64| -> (SyncBandwidth, SyncBandwidth) {
            (min_s.lerp(max_s, lambda), min_r.lerp(max_r, lambda))
        };

        // One evaluator for the whole request: the sender-side analyses
        // of existing connections are computed once and reused across
        // every search iteration.
        let base_inputs = self.inputs_with(None);
        let mk_inputs = |hs: SyncBandwidth, hr: SyncBandwidth| -> Vec<PathInput> {
            let mut v = base_inputs.clone();
            v.push(PathInput {
                source: spec.source,
                dest: spec.dest,
                envelope: Arc::clone(&spec.envelope),
                h_s: hs,
                h_r: hr,
                class: spec.class,
            });
            v
        };
        let mut carried = self.eval_cache.take().unwrap_or_default();
        // A persisted cache survives active-set changes (its keys are
        // content-addressed), so bound its growth here instead.
        if carried.stage1_entries() > self.cache_caps.stage1
            || carried.mux_entries() > self.cache_caps.mux
            || carried.receive_entries() > self.cache_caps.receive
        {
            carried.clear();
        }
        let mut ev = Evaluator::with_cache(&self.net, cfg.eval.clone(), carried);
        let mut fast_stats = FastPathStats::default();

        // Steps 2–5 run inside one closure so that the evaluator's cache
        // statistics are recorded on *every* exit path (admit, reject,
        // or error) before the evaluator is dropped.
        enum Search {
            Chosen(SyncBandwidth, SyncBandwidth, Vec<PathReport>),
            Reject(RejectReason, Option<TraceParts>),
        }
        // Deadlines of the existing connections, in `active` (= input)
        // order, for the screened evaluations below.
        let deadlines: Vec<Seconds> = self.active.iter().map(|c| c.spec.deadline).collect();
        let searched: Result<Search, CacError> = (|| {
            // Step 2: the feasible region is empty unless the maximum works —
            // and because existing connections' delays are nondecreasing in
            // the newcomer's allocation, verifying them here covers every
            // smaller allocation the searches will visit.
            //
            // Without decision tracing nobody reads the per-connection
            // reports, so existing paths go through the screened check
            // (exact cache → monotone screening bound → dense): the
            // accept/reject outcome is identical, only the reports are
            // not materialized. `reports_at_max` stays empty then — it
            // is only ever consumed inside `tracing.then` closures.
            let reports_at_max = if !tracing {
                match ev.evaluate_screened(&mk_inputs(max_s, max_r), &deadlines)? {
                    ScreenedOutcome::Infeasible(detail) => {
                        return Ok(Search::Reject(
                            RejectReason::InfeasibleAtMaximum { detail },
                            None,
                        ));
                    }
                    ScreenedOutcome::DeadlineMiss { index, .. } => {
                        return Ok(Search::Reject(
                            RejectReason::InfeasibleAtMaximum {
                                detail: format!(
                                    "existing {} would miss its deadline",
                                    self.active[index].id
                                ),
                            },
                            None,
                        ));
                    }
                    ScreenedOutcome::Feasible { candidate } => {
                        if candidate.total > spec.deadline {
                            return Ok(Search::Reject(
                                RejectReason::InfeasibleAtMaximum {
                                    detail: "requesting connection misses its deadline at \
                                             (H_S^max, H_R^max)"
                                        .into(),
                                },
                                None,
                            ));
                        }
                        Vec::new()
                    }
                }
            } else {
                let reports_at_max = match ev.evaluate_full(&mk_inputs(max_s, max_r))? {
                    EvalOutcome::Infeasible(detail) => {
                        let parts = tracing.then(|| TraceParts {
                            allocation: Some((max_s, max_r)),
                            connections: Vec::new(),
                            binding: Some(BindingConstraint::ServerUnstable {
                                detail: detail.clone(),
                            }),
                        });
                        return Ok(Search::Reject(
                            RejectReason::InfeasibleAtMaximum { detail },
                            parts,
                        ));
                    }
                    EvalOutcome::Feasible(reports) => reports,
                };
                for (i, c) in self.active.iter().enumerate() {
                    if reports_at_max[i].total > c.spec.deadline {
                        let parts = tracing.then(|| TraceParts {
                            allocation: Some((max_s, max_r)),
                            connections: self.traces_with_candidate(&reports_at_max, &spec),
                            binding: Some(deadline_binding(
                                Some(c.id),
                                &reports_at_max[i],
                                c.spec.deadline,
                            )),
                        });
                        return Ok(Search::Reject(
                            RejectReason::InfeasibleAtMaximum {
                                detail: format!("existing {} would miss its deadline", c.id),
                            },
                            parts,
                        ));
                    }
                }
                let candidate_at_max = *reports_at_max.last().expect("candidate included");
                if candidate_at_max.total > spec.deadline {
                    let parts = tracing.then(|| TraceParts {
                        allocation: Some((max_s, max_r)),
                        connections: self.traces_with_candidate(&reports_at_max, &spec),
                        binding: Some(deadline_binding(None, &candidate_at_max, spec.deadline)),
                    });
                    return Ok(Search::Reject(
                        RejectReason::InfeasibleAtMaximum {
                            detail:
                                "requesting connection misses its deadline at (H_S^max, H_R^max)"
                                    .into(),
                        },
                        parts,
                    ));
                }
                reports_at_max
            };

            // Reference signature at the maximum, for the eq.-31/32 test.
            // β = 0 never consumes it: λ* degenerates to λ_min, so the
            // whole step-4 signature search (the dense-probe storm of a
            // loaded closure) is skipped below.
            let ref_sig = if cfg.beta == 0.0 {
                None
            } else {
                match ev.evaluate_candidate(&mk_inputs(max_s, max_r))? {
                    CandidateOutcome::Feasible {
                        candidate,
                        mux_delays,
                    } => Some((candidate.total, mux_delays)),
                    CandidateOutcome::Infeasible(detail) => {
                        let parts = tracing.then(|| TraceParts {
                            allocation: Some((max_s, max_r)),
                            connections: self.traces_with_candidate(&reports_at_max, &spec),
                            binding: Some(BindingConstraint::ServerUnstable {
                                detail: detail.clone(),
                            }),
                        });
                        return Ok(Search::Reject(
                            RejectReason::InfeasibleAtMaximum { detail },
                            parts,
                        ));
                    }
                }
            };

            // Fast decision ladder for step 3's boolean probes (see
            // `crate::incremental`): assembled per decision from the
            // delta-maintained per-server state and the evaluator's
            // cached stage-1 summaries; `None` runs everything densely.
            let fast_ctx = match (&self.incremental, self.fast_path) {
                (Some(state), true) => {
                    match FastContext::assemble(
                        &mut ev,
                        &self.net,
                        state,
                        &self.active,
                        spec.source,
                        spec.dest,
                    )? {
                        Ok(ctx) => Some(ctx),
                        Err(cause) => {
                            // The whole decision runs densely; count it
                            // so a depressed service-level hit rate is
                            // attributable to its cause.
                            fast_stats.record_skip(cause);
                            obs::event(
                                "fast_path_skipped",
                                &[("cause", obs::FieldValue::Str(cause))],
                            );
                            None
                        }
                    }
                }
                _ => None,
            };

            // Candidate-only probe: feasibility is the newcomer's own
            // deadline (existing ones are covered by Step 2 + monotonicity).
            let probe = |ev: &mut Evaluator,
                         lambda: f64|
             -> Result<Option<(Seconds, Vec<Seconds>)>, CacError> {
                let (hs, hr) = at(lambda);
                match ev.evaluate_candidate(&mk_inputs(hs, hr))? {
                    CandidateOutcome::Feasible {
                        candidate,
                        mux_delays,
                    } if candidate.total <= spec.deadline => {
                        Ok(Some((candidate.total, mux_delays)))
                    }
                    _ => Ok(None),
                }
            };

            // Boolean wrapper for the step-3 bisection: the ladder may
            // decide feasibility outright, falling back to the dense
            // probe when no rung is decisive. Only these booleans ever
            // come from the ladder — steps 4–5 consume dense *values* —
            // so sound rungs keep the bisection path, and with it every
            // committed number, bit-identical to the fast-off run.
            let mut probe_hit = |ev: &mut Evaluator, lambda: f64| -> Result<bool, CacError> {
                if let Some(ctx) = fast_ctx.as_ref() {
                    let (hs, hr) = at(lambda);
                    let cand = PathInput {
                        source: spec.source,
                        dest: spec.dest,
                        envelope: Arc::clone(&spec.envelope),
                        h_s: hs,
                        h_r: hr,
                        class: spec.class,
                    };
                    if let Some(decided) = ctx.probe(ev, &cand, spec.deadline, &mut fast_stats)? {
                        return Ok(decided);
                    }
                }
                Ok(probe(ev, lambda)?.is_some())
            };

            // Step 3: minimum needed allocation along the line.
            let lambda_min = if probe_hit(&mut ev, 0.0)? {
                0.0
            } else {
                let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
                for _ in 0..cfg.search_iterations {
                    let mid = 0.5 * (lo + hi);
                    if probe_hit(&mut ev, mid)? {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            };

            // Step 4: maximum needed allocation — the smallest point whose
            // delay signature matches the maximum-allocation one (eqs.
            // 31–33). The "excess" of a point is how much delay performance
            // it still leaves on the table: the candidate's own gap to its
            // λ = 1 delay plus every multiplexer-bound shift (equal mux
            // delays imply equal existing-connection totals, since their
            // sender sides are fixed and their receive sides then see
            // identical inputs). When delays saturate the excess hits zero
            // and this is the paper's exact criterion; when they improve
            // continuously we accept the point realizing all but
            // `equality_tolerance` of the achievable improvement.
            let lambda_max = match &ref_sig {
                // β = 0: λ* = λ_min regardless of λ_max, so don't search.
                None => lambda_min,
                Some((ref_total, ref_mux)) => {
                    let excess = |total: Seconds, mux: &[Seconds]| -> f64 {
                        let mut e = (total.value() - ref_total.value()).abs();
                        if mux.len() == ref_mux.len() {
                            e += mux
                                .iter()
                                .zip(ref_mux)
                                .map(|(a, b)| (a.value() - b.value()).abs())
                                .sum::<f64>();
                        } else {
                            e += ref_total.value();
                        }
                        e
                    };
                    let at_min = probe(&mut ev, lambda_min)?;
                    let improvement_scale = at_min
                        .as_ref()
                        .map_or(0.0, |(total, mux)| excess(*total, mux))
                        .max(1.0e-9);
                    let equals_max = |total: Seconds, mux: &[Seconds]| {
                        excess(total, mux) <= cfg.equality_tolerance * improvement_scale
                    };
                    match at_min {
                        Some((total, ref mux)) if equals_max(total, mux) => lambda_min,
                        _ => {
                            let (mut lo, mut hi) = (lambda_min, 1.0_f64);
                            for _ in 0..cfg.search_iterations {
                                let mid = 0.5 * (lo + hi);
                                match probe(&mut ev, mid)? {
                                    Some((total, ref mux)) if equals_max(total, mux) => hi = mid,
                                    _ => lo = mid,
                                }
                            }
                            hi
                        }
                    }
                }
            };

            // Step 5: H = H_min_need + beta * (H_max_need - H_min_need).
            let lambda_star = lambda_min + cfg.beta * (lambda_max - lambda_min);
            // Final verification is a *full* evaluation: monotonicity is a
            // theorem about the model, but numerics can chip at it, so check
            // everything at the chosen point and fall back toward the
            // maximum on failure.
            let mut chosen = None;
            for lambda in [lambda_star, lambda_max, 1.0] {
                let (hs, hr) = at(lambda);
                if !tracing {
                    // Screened twin of the dense arm below: identical
                    // accept set (the screening bound only ever passes
                    // paths the dense check would pass), but only the
                    // candidate's report is materialized — which is the
                    // only one the commit path reads.
                    if let ScreenedOutcome::Feasible { candidate } =
                        ev.evaluate_screened(&mk_inputs(hs, hr), &deadlines)?
                    {
                        if candidate.total <= spec.deadline {
                            chosen = Some((hs, hr, vec![candidate]));
                            break;
                        }
                    }
                } else if let EvalOutcome::Feasible(reports) =
                    ev.evaluate_full(&mk_inputs(hs, hr))?
                {
                    let all_ok = self
                        .active
                        .iter()
                        .enumerate()
                        .all(|(i, c)| reports[i].total <= c.spec.deadline)
                        && reports.last().expect("candidate").total <= spec.deadline;
                    if all_ok {
                        chosen = Some((hs, hr, reports));
                        break;
                    }
                }
            }
            match chosen {
                Some((h_s, h_r, reports)) => Ok(Search::Chosen(h_s, h_r, reports)),
                None => {
                    let parts = tracing.then(|| TraceParts {
                        allocation: Some((max_s, max_r)),
                        connections: self.traces_with_candidate(&reports_at_max, &spec),
                        binding: Some(BindingConstraint::ServerUnstable {
                            detail: "allocation search failed to verify (numerical)".into(),
                        }),
                    });
                    Ok(Search::Reject(
                        RejectReason::InfeasibleAtMaximum {
                            detail: "allocation search failed to verify (numerical)".into(),
                        },
                        parts,
                    ))
                }
            }
        })();
        let stats = ev.cache_stats();
        let cache = ev.into_cache();
        self.last_cache_stats = Some(stats);
        self.last_fast_stats = Some(fast_stats);
        if self.persist_cache {
            self.eval_cache = Some(cache);
        }
        let (h_s, h_r, reports) = match searched? {
            Search::Chosen(h_s, h_r, reports) => (h_s, h_r, reports),
            Search::Reject(reason, parts) => return Ok((Decision::Rejected(reason), parts)),
        };

        // Commit. A non-persisted cache dies with the active-set change;
        // a persisted one stays valid — see `persist_eval_cache`.
        if !self.persist_cache {
            self.eval_cache = None;
        }
        let id = ConnectionId(self.next_id);
        self.next_id += 1;
        let key = AllocationKey(id.0);
        self.tables[spec.source.ring]
            .allocate(key, h_s, ring_s)
            .map_err(CacError::from)?;
        if let Err(e) = self.tables[spec.dest.ring].allocate(key, h_r, ring_r) {
            // Roll back the source allocation before surfacing the error.
            let _ = self.tables[spec.source.ring].release(key);
            return Err(e.into());
        }
        if let Some(state) = self.incremental.as_mut() {
            state.admit(&self.net, id, &spec, h_s, h_r)?;
        }
        let delay_bound = reports.last().expect("candidate included").total;
        self.active.push(ActiveConnection {
            id,
            spec,
            h_s,
            h_r,
            delay_bound,
        });
        // Build the trace after the push so the candidate's entry (the
        // last) carries its real id.
        let parts = tracing.then(|| TraceParts {
            allocation: Some((h_s, h_r)),
            connections: self.traces_committed(&reports),
            binding: None,
        });
        Ok((
            Decision::Admitted {
                id,
                h_s,
                h_r,
                delay_bound,
            },
            parts,
        ))
    }

    /// Admits a connection at a *fixed* allocation if (and only if) all
    /// deadlines hold there — no searching, no β.
    fn admit_fixed(
        &mut self,
        spec: ConnectionSpec,
        h_s: SyncBandwidth,
        h_r: SyncBandwidth,
        cfg: &CacConfig,
    ) -> Result<(Decision, Option<TraceParts>), CacError> {
        self.validate_spec(&spec)?;
        let tracing = self.trace_decisions;
        if let Some(component) = self.down_on_path(&spec)? {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::ComponentDown { component }),
            });
            return Ok((
                Decision::Rejected(RejectReason::ComponentUnavailable { component }),
                parts,
            ));
        }
        let avail_s = self.available_on(spec.source.ring);
        let avail_r = self.available_on(spec.dest.ring);
        if h_s.per_rotation() > avail_s {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::SourceBandwidth {
                    ring: spec.source.ring.into(),
                    available: avail_s,
                    required: h_s.per_rotation(),
                }),
            });
            return Ok((
                Decision::Rejected(RejectReason::SourceBandwidthExhausted {
                    available: avail_s,
                    required: h_s.per_rotation(),
                }),
                parts,
            ));
        }
        if h_r.per_rotation() > avail_r {
            let parts = tracing.then(|| TraceParts {
                allocation: None,
                connections: Vec::new(),
                binding: Some(BindingConstraint::DestBandwidth {
                    ring: spec.dest.ring.into(),
                    available: avail_r,
                    required: h_r.per_rotation(),
                }),
            });
            return Ok((
                Decision::Rejected(RejectReason::DestBandwidthExhausted {
                    available: avail_r,
                    required: h_r.per_rotation(),
                }),
                parts,
            ));
        }
        let reports = match self.feasible_with(&spec, h_s, h_r, cfg)? {
            FixedCheck::Feasible(reports) => reports,
            FixedCheck::Unstable(detail) => {
                let parts = tracing.then(|| TraceParts {
                    allocation: Some((h_s, h_r)),
                    connections: Vec::new(),
                    binding: Some(BindingConstraint::ServerUnstable {
                        detail: detail.clone(),
                    }),
                });
                return Ok((
                    Decision::Rejected(RejectReason::InfeasibleAtMaximum { detail }),
                    parts,
                ));
            }
            FixedCheck::DeadlineMiss { victim, reports } => {
                let parts = tracing.then(|| {
                    let binding = match victim {
                        Some(i) => deadline_binding(
                            Some(self.active[i].id),
                            &reports[i],
                            self.active[i].spec.deadline,
                        ),
                        None => deadline_binding(
                            None,
                            reports.last().expect("candidate included"),
                            spec.deadline,
                        ),
                    };
                    TraceParts {
                        allocation: Some((h_s, h_r)),
                        connections: self.traces_with_candidate(&reports, &spec),
                        binding: Some(binding),
                    }
                });
                return Ok((
                    Decision::Rejected(RejectReason::InfeasibleAtMaximum {
                        detail: "deadline violated at the fixed allocation".into(),
                    }),
                    parts,
                ));
            }
        };
        if !self.persist_cache {
            self.eval_cache = None;
        }
        let id = ConnectionId(self.next_id);
        self.next_id += 1;
        let key = AllocationKey(id.0);
        self.tables[spec.source.ring]
            .allocate(key, h_s, self.net.ring(spec.source.ring))
            .map_err(CacError::from)?;
        if let Err(e) =
            self.tables[spec.dest.ring].allocate(key, h_r, self.net.ring(spec.dest.ring))
        {
            let _ = self.tables[spec.source.ring].release(key);
            return Err(e.into());
        }
        if let Some(state) = self.incremental.as_mut() {
            state.admit(&self.net, id, &spec, h_s, h_r)?;
        }
        let delay_bound = reports.last().expect("candidate included").total;
        self.active.push(ActiveConnection {
            id,
            spec,
            h_s,
            h_r,
            delay_bound,
        });
        let parts = tracing.then(|| TraceParts {
            allocation: Some((h_s, h_r)),
            connections: self.traces_committed(&reports),
            binding: None,
        });
        Ok((
            Decision::Admitted {
                id,
                h_s,
                h_r,
                delay_bound,
            },
            parts,
        ))
    }

    /// Tears down an active connection, releasing its allocations.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownConnection`] if `id` is not active.
    pub fn release(&mut self, id: ConnectionId) -> Result<(), CacError> {
        let idx = self
            .active
            .iter()
            .position(|c| c.id == id)
            .ok_or(CacError::UnknownConnection(id))?;
        let conn = self.active.remove(idx);
        if !self.persist_cache {
            self.eval_cache = None;
        }
        if let Some(state) = self.incremental.as_mut() {
            state.release(id);
        }
        let key = AllocationKey(id.0);
        self.tables[conn.spec.source.ring]
            .release(key)
            .map_err(CacError::from)?;
        self.tables[conn.spec.dest.ring]
            .release(key)
            .map_err(CacError::from)?;
        Ok(())
    }

    /// Marks a component as failed, tearing down every active
    /// connection whose path crosses it and reclaiming their `H_S` /
    /// `H_R` allocations. Idempotent: downing an already-down component
    /// tears down nothing further (its connections are already gone).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] for a component outside
    /// this topology; propagates bookkeeping errors from teardown.
    pub fn set_component_down(&mut self, component: Component) -> Result<TeardownReport, CacError> {
        self.validate_component(component)?;
        let newly = self.down.insert(component);
        let mut report = TeardownReport {
            component,
            already_down: !newly,
            torn: Vec::new(),
            reclaimed_s: Seconds::ZERO,
            reclaimed_r: Seconds::ZERO,
        };
        if newly {
            let victims: Vec<ConnectionId> = self
                .active
                .iter()
                .filter(|c| Self::crosses(&self.net, &c.spec, component))
                .map(|c| c.id)
                .collect();
            for id in victims {
                let idx = self
                    .active
                    .iter()
                    .position(|c| c.id == id)
                    .expect("victim is active");
                let conn = self.active.remove(idx);
                if !self.persist_cache {
                    self.eval_cache = None;
                }
                if let Some(state) = self.incremental.as_mut() {
                    state.release(id);
                }
                let key = AllocationKey(id.0);
                self.tables[conn.spec.source.ring]
                    .release(key)
                    .map_err(CacError::from)?;
                self.tables[conn.spec.dest.ring]
                    .release(key)
                    .map_err(CacError::from)?;
                report.reclaimed_s += conn.h_s.per_rotation();
                report.reclaimed_r += conn.h_r.per_rotation();
                report.torn.push(conn);
            }
        }
        obs::event(
            "component_down",
            &[
                ("kind", obs::FieldValue::Str(component.kind())),
                ("index", obs::FieldValue::U64(component.index() as u64)),
                ("torn", obs::FieldValue::U64(report.torn.len() as u64)),
            ],
        );
        Ok(report)
    }

    /// Restores a failed component. Returns whether it was down (a
    /// repeat restore is a no-op returning `false`). Torn-down
    /// connections do *not* come back automatically — re-admission is a
    /// policy decision left to the caller (the service layer's
    /// "re-admit greedily").
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] for a component outside
    /// this topology.
    pub fn set_component_up(&mut self, component: Component) -> Result<bool, CacError> {
        self.validate_component(component)?;
        let was_down = self.down.remove(&component);
        obs::event(
            "component_up",
            &[
                ("kind", obs::FieldValue::Str(component.kind())),
                ("index", obs::FieldValue::U64(component.index() as u64)),
                ("was_down", obs::FieldValue::Bool(was_down)),
            ],
        );
        Ok(was_down)
    }

    /// The components currently marked down, in sorted order.
    #[must_use]
    pub fn down_components(&self) -> Vec<Component> {
        self.down.iter().copied().collect()
    }

    /// The first down component on a request's path, if any — checked
    /// in a fixed order (source ring, source device, backbone links in
    /// route order, destination device, destination ring) so decisions
    /// stay deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] if the rings are out of range or unrouted.
    pub fn down_on_path(&self, spec: &ConnectionSpec) -> Result<Option<Component>, CacError> {
        if self.down.is_empty() {
            return Ok(None);
        }
        let ordered = [
            Component::Ring(RingId(spec.source.ring)),
            Component::IfDev(RingId(spec.source.ring)),
        ];
        for c in ordered {
            if self.down.contains(&c) {
                return Ok(Some(c));
            }
        }
        for link in self
            .net
            .route_between(spec.source.ring, spec.dest.ring)?
            .iter()
        {
            let c = Component::Link(*link);
            if self.down.contains(&c) {
                return Ok(Some(c));
            }
        }
        for c in [
            Component::IfDev(RingId(spec.dest.ring)),
            Component::Ring(RingId(spec.dest.ring)),
        ] {
            if self.down.contains(&c) {
                return Ok(Some(c));
            }
        }
        Ok(None)
    }

    /// Whether a spec's path crosses `component` (used to pick teardown
    /// victims).
    fn crosses(net: &HetNetwork, spec: &ConnectionSpec, component: Component) -> bool {
        match component {
            Component::Ring(r) | Component::IfDev(r) => {
                spec.source.ring == r.0 || spec.dest.ring == r.0
            }
            Component::Link(l) => net
                .route_between(spec.source.ring, spec.dest.ring)
                .is_ok_and(|route| route.contains(&l)),
        }
    }

    fn validate_component(&self, component: Component) -> Result<(), CacError> {
        let ok = match component {
            Component::Ring(r) | Component::IfDev(r) => r.0 < self.net.rings().len(),
            Component::Link(l) => l.0 < self.net.backbone().link_count(),
        };
        if ok {
            Ok(())
        } else {
            Err(CacError::InvalidNetwork(format!(
                "unknown component {component}"
            )))
        }
    }

    /// Captures the full admission state in a versioned, restorable
    /// form; see [`crate::snapshot`] for the lossless-ness contract.
    #[must_use]
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            version: SNAPSHOT_VERSION,
            topology: self.net.summary(),
            rings: self.net.rings().to_vec(),
            connections: self
                .active
                .iter()
                .map(|c| ConnectionSnapshot {
                    id: c.id,
                    source: c.spec.source,
                    dest: c.spec.dest,
                    envelope: Arc::clone(&c.spec.envelope),
                    deadline: c.spec.deadline,
                    class: c.spec.class,
                    h_s: c.h_s,
                    h_r: c.h_r,
                    delay_bound: c.delay_bound,
                })
                .collect(),
            down: self.down.iter().copied().collect(),
            next_id: self.next_id,
            clock: self.clock,
            decision_seq: self.decision_seq,
        }
    }

    /// Replaces this state's admission bookkeeping with the snapshot's:
    /// active set, allocation tables (rebuilt by re-allocating in
    /// admission order, which reproduces the original tables
    /// bit-for-bit), down set, id counter, clock and decision sequence.
    /// The snapshot's ring parameters are *adopted*: when they differ
    /// from this network's (the snapshot was taken after a live
    /// [`NetworkState::reconfigure`]), the rings are retuned to match
    /// before the tables are rebuilt, so recovery lands on the
    /// reconfigured timing. The evaluator cache and last-decision trace
    /// are cleared (both are decision-neutral); the installed observer
    /// and tracing flag are left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::SnapshotMismatch`] for a wrong version,
    /// topology, or ring count, or if the snapshot's allocations do not
    /// fit the rings (a corrupted snapshot).
    pub fn restore(&mut self, snap: &StateSnapshot) -> Result<(), CacError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(CacError::SnapshotMismatch(format!(
                "snapshot version {} != supported {SNAPSHOT_VERSION}",
                snap.version
            )));
        }
        if snap.topology != self.net.summary() {
            return Err(CacError::SnapshotMismatch(format!(
                "snapshot topology ({}) != this network ({})",
                snap.topology,
                self.net.summary()
            )));
        }
        if snap.rings.as_slice() != self.net.rings() {
            self.net = Arc::new(
                self.net
                    .as_ref()
                    .with_ring_configs(snap.rings.clone())
                    .map_err(|e| {
                        CacError::SnapshotMismatch(format!("snapshot ring parameters: {e}"))
                    })?,
            );
        }
        let mut tables = vec![SyncAllocationTable::new(); self.net.rings().len()];
        let mut active = Vec::with_capacity(snap.connections.len());
        for c in &snap.connections {
            if c.id.0 >= snap.next_id {
                return Err(CacError::SnapshotMismatch(format!(
                    "{} not below next_id {}",
                    c.id, snap.next_id
                )));
            }
            let key = AllocationKey(c.id.0);
            let fit = |e: hetnet_fddi::FddiError| {
                CacError::SnapshotMismatch(format!("snapshot allocations do not fit: {e}"))
            };
            tables[c.source.ring]
                .allocate(key, c.h_s, self.net.ring(c.source.ring))
                .map_err(fit)?;
            tables[c.dest.ring]
                .allocate(key, c.h_r, self.net.ring(c.dest.ring))
                .map_err(fit)?;
            active.push(ActiveConnection {
                id: c.id,
                spec: c.spec(),
                h_s: c.h_s,
                h_r: c.h_r,
                delay_bound: c.delay_bound,
            });
        }
        self.tables = tables;
        self.active = active;
        self.down = snap.down.iter().copied().collect();
        self.next_id = snap.next_id;
        self.clock = snap.clock;
        self.decision_seq = snap.decision_seq;
        self.eval_cache = None;
        self.last_cache_stats = None;
        self.last_fast_stats = None;
        self.last_trace = None;
        if self.fast_path {
            self.incremental = Some(IncrementalState::rebuild(&self.net, &self.active)?);
        }
        Ok(())
    }

    /// Builds a fresh state over `net` directly from a snapshot —
    /// [`NetworkState::new`] followed by [`NetworkState::restore`].
    ///
    /// # Errors
    ///
    /// As for [`NetworkState::restore`].
    pub fn from_snapshot(net: HetNetwork, snap: &StateSnapshot) -> Result<Self, CacError> {
        let mut state = Self::new(net);
        state.restore(snap)?;
        Ok(state)
    }

    /// Applies a live reconfiguration: the ring parameters change in
    /// place per `plan`, and every admitted connection is renegotiated
    /// against the new parameters — in admission (id) order, *keeping
    /// its id* — under `opts` (with `plan.beta` substituted into the
    /// β-search when set). Connections that no longer fit are dropped
    /// and returned in the report for the caller to park and retry.
    ///
    /// Keeping ids makes the operation certifiable: a fresh state built
    /// at the new parameters and fed the surviving specs through
    /// [`NetworkState::admit`] in the same order computes bit-identical
    /// allocations — ids only order the allocation tables and
    /// multiplexer memberships, and an order-preserving renumbering
    /// never changes a sum — so post-reconfig decisions are
    /// bit-identical to that fresh engine's (pinned by the reconfig
    /// certification tests). It also keeps `next_id` monotone, so
    /// departure bookkeeping above the core never sees an id reused.
    ///
    /// The incremental fast-path state is rebuilt empty and then
    /// delta-maintained through the renegotiations; the evaluator cache
    /// is dropped wholesale (its keys do not span ring parameters). The
    /// reconfiguration consumes one decision sequence number and
    /// reaches the observer via
    /// [`DecisionObserver::on_reconfig`], so audit logs built on the
    /// sequence stay gap-free.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidRequest`] for a malformed plan,
    /// [`CacError::InvalidNetwork`] if the resulting ring parameters
    /// are invalid (e.g. Δ ≥ TTRT), and propagates evaluator errors
    /// from the renegotiations — after which the state must be
    /// considered poisoned, like any bookkeeping error.
    pub fn reconfigure(
        &mut self,
        plan: &ReconfigPlan,
        opts: &AdmissionOptions,
    ) -> Result<ReconfigReport, CacError> {
        let _span = obs::span("reconfigure");
        let new_rings = plan.apply(self.net.rings())?;
        let net = Arc::new(self.net.as_ref().with_ring_configs(new_rings)?);
        let mut report = ReconfigReport {
            old_allocatable: self.net.rings().iter().map(|r| r.allocatable()).collect(),
            new_allocatable: net.rings().iter().map(|r| r.allocatable()).collect(),
            ..ReconfigReport::default()
        };
        let survivors = std::mem::take(&mut self.active);
        let saved_next_id = self.next_id;
        self.net = net;
        self.tables = vec![SyncAllocationTable::new(); self.net.rings().len()];
        self.eval_cache = None;
        self.last_cache_stats = None;
        self.last_fast_stats = None;
        self.last_trace = None;
        if self.fast_path {
            self.incremental = Some(IncrementalState::rebuild(&self.net, &self.active)?);
        }
        let mut cac = opts.cac.clone();
        if let Some(beta) = plan.beta {
            cac.beta = beta;
        }
        for conn in survivors {
            // Renegotiate through the regular admission paths, but with
            // the id counter pinned to the connection's original id: the
            // commit then re-assigns exactly that id, and because the
            // survivors arrive in ascending id order the allocation
            // tables are rebuilt in the same summation order a fresh
            // engine would produce.
            self.next_id = conn.id.0;
            let (decision, _parts) = match opts.allocation {
                AllocationPolicy::BetaSearch => self.admit_beta(conn.spec.clone(), &cac)?,
                AllocationPolicy::Fixed { h_s, h_r } => {
                    self.admit_fixed(conn.spec.clone(), h_s, h_r, &cac)?
                }
            };
            match decision {
                Decision::Admitted { id, h_s, h_r, .. } => {
                    debug_assert_eq!(id, conn.id, "renegotiation must keep the id");
                    let identical = h_s.per_rotation().value().to_bits()
                        == conn.h_s.per_rotation().value().to_bits()
                        && h_r.per_rotation().value().to_bits()
                            == conn.h_r.per_rotation().value().to_bits();
                    if identical {
                        report.unchanged.push(id);
                    } else {
                        report.renegotiated.push(id);
                    }
                }
                Decision::Rejected(_) => {
                    report.reclaimed_s += conn.h_s.per_rotation();
                    report.reclaimed_r += conn.h_r.per_rotation();
                    report.dropped.push(conn);
                }
            }
        }
        self.next_id = saved_next_id;
        let seq = self.decision_seq;
        self.decision_seq += 1;
        obs::event(
            "reconfigure",
            &[
                ("seq", obs::FieldValue::U64(seq)),
                (
                    "renegotiated",
                    obs::FieldValue::U64(report.renegotiated.len() as u64),
                ),
                (
                    "unchanged",
                    obs::FieldValue::U64(report.unchanged.len() as u64),
                ),
                ("dropped", obs::FieldValue::U64(report.dropped.len() as u64)),
            ],
        );
        if let Some(mut hook) = self.observer.take() {
            hook.on_reconfig(seq, &report);
            self.observer = Some(hook);
        }
        Ok(report)
    }

    /// Builds a state over a shared topology that holds exactly
    /// `connections` — a subset of some larger admitted set, in id
    /// order — with allocation tables replayed in that same order, the
    /// loop [`NetworkState::restore`] runs. `next_id` seeds the id
    /// counter so that an admission in this state is assigned the id
    /// the full sequential state would assign next, and `down` carries
    /// the failed-component set forward.
    ///
    /// The sharded engine builds one of these per decision from a
    /// dependency closure of the candidate: a set closed under
    /// "shares a multiplexer with". Over such a subset every quantity
    /// the admission computes — allocation-table availability on the
    /// endpoint rings, per-multiplexer aggregates, existing flows'
    /// delay bounds — is bit-identical to the full state's, because
    /// every flow that could contribute to them is present and in the
    /// same relative order (see `DESIGN.md` §12).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::SnapshotMismatch`] if `connections` is not
    /// strictly id-ordered below `next_id`, or its allocations do not
    /// fit the rings (either means the caller's partitioned state is
    /// corrupt).
    pub fn scoped(
        net: Arc<HetNetwork>,
        connections: Vec<ActiveConnection>,
        down: BTreeSet<Component>,
        next_id: u64,
    ) -> Result<Self, CacError> {
        let mut state = Self::new_shared(net);
        let mut prev: Option<u64> = None;
        for c in &connections {
            if c.id.0 >= next_id || prev.is_some_and(|p| p >= c.id.0) {
                return Err(CacError::SnapshotMismatch(format!(
                    "scoped subset not strictly id-ordered below next_id {next_id} at {}",
                    c.id
                )));
            }
            prev = Some(c.id.0);
            let key = AllocationKey(c.id.0);
            let fit = |e: hetnet_fddi::FddiError| {
                CacError::SnapshotMismatch(format!("scoped allocations do not fit: {e}"))
            };
            state.tables[c.spec.source.ring]
                .allocate(key, c.h_s, state.net.ring(c.spec.source.ring))
                .map_err(fit)?;
            state.tables[c.spec.dest.ring]
                .allocate(key, c.h_r, state.net.ring(c.spec.dest.ring))
                .map_err(fit)?;
        }
        state.active = connections;
        state.down = down;
        state.next_id = next_id;
        Ok(state)
    }

    /// Recomputes every active connection's *slack*: deadline minus the
    /// current worst-case delay bound. Operators watch these to see how
    /// close the admitted set runs to its contracts (a β = 0 network
    /// shows slacks near zero; larger β buys headroom).
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] if the state is internally inconsistent.
    pub fn slacks(&self, cfg: &CacConfig) -> Result<Vec<(ConnectionId, Seconds)>, CacError> {
        let delays = self.current_delays(cfg)?;
        Ok(delays
            .into_iter()
            .zip(&self.active)
            .map(|((id, d), c)| (id, c.spec.deadline - d))
            .collect())
    }

    /// Recomputes every active connection's current delay bound.
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] if the state is internally inconsistent.
    pub fn current_delays(
        &self,
        cfg: &CacConfig,
    ) -> Result<Vec<(ConnectionId, Seconds)>, CacError> {
        let inputs = self.inputs_with(None);
        match evaluate_paths(&self.net, &inputs, &cfg.eval)? {
            EvalOutcome::Feasible(reports) => Ok(self
                .active
                .iter()
                .zip(reports)
                .map(|(c, r)| (c.id, r.total))
                .collect()),
            EvalOutcome::Infeasible(detail) => Err(CacError::Substrate(format!(
                "admitted set became infeasible: {detail} (invariant violation)"
            ))),
        }
    }

    fn validate_spec(&self, spec: &ConnectionSpec) -> Result<(), CacError> {
        if !self.net.contains(spec.source) {
            return Err(CacError::InvalidRequest(format!(
                "unknown source {}",
                spec.source
            )));
        }
        if !self.net.contains(spec.dest) {
            return Err(CacError::InvalidRequest(format!(
                "unknown dest {}",
                spec.dest
            )));
        }
        if spec.source.ring == spec.dest.ring {
            return Err(CacError::InvalidRequest(
                "source and destination must be on different rings".into(),
            ));
        }
        if spec.deadline.value() <= 0.0 {
            return Err(CacError::InvalidRequest("deadline must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::HostId;
    use hetnet_fddi::ring::RingConfig;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};

    fn state() -> NetworkState {
        NetworkState::new(HetNetwork::paper_topology())
    }

    fn spec(src: (usize, usize), dst: (usize, usize), deadline_ms: f64) -> ConnectionSpec {
        ConnectionSpec {
            source: HostId {
                ring: src.0,
                station: src.1,
            },
            dest: HostId {
                ring: dst.0,
                station: dst.1,
            },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(2.0),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(deadline_ms),
            class: 0,
        }
    }

    #[test]
    fn admits_a_reasonable_request() {
        let mut s = state();
        let cfg = CacConfig::default();
        let d = s
            .admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap();
        match d {
            Decision::Admitted {
                h_s,
                h_r,
                delay_bound,
                ..
            } => {
                assert!(delay_bound <= Seconds::from_millis(100.0));
                assert!(h_s.per_rotation().value() > 0.0);
                assert!(h_r.per_rotation().value() > 0.0);
                // The allocation is recorded on both rings.
                assert!(s.available_on(0) < Seconds::from_millis(7.2));
                assert!(s.available_on(1) < Seconds::from_millis(7.2));
                assert_eq!(s.active().len(), 1);
            }
            Decision::Rejected(r) => panic!("unexpected rejection: {r}"),
        }
    }

    #[test]
    fn rejects_impossible_deadline() {
        let mut s = state();
        let cfg = CacConfig::default();
        // Two token rotations alone exceed 1 ms.
        let d = s
            .admit(spec((0, 0), (1, 0), 1.0), &cfg.clone().into())
            .unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::InfeasibleAtMaximum { .. })
        ));
        assert!(s.active().is_empty());
        // Nothing was allocated.
        assert!((s.available_on(0).as_millis() - 7.2).abs() < 1e-9);
    }

    #[test]
    fn beta_interpolates_between_min_and_max() {
        let cfg0 = CacConfig::default().with_beta(0.0);
        let cfg1 = CacConfig::default().with_beta(1.0);
        let cfg_half = CacConfig::default().with_beta(0.5);
        let mut h = Vec::new();
        for cfg in [&cfg0, &cfg_half, &cfg1] {
            let mut s = state();
            match s
                .admit(spec((0, 0), (1, 0), 60.0), &cfg.clone().into())
                .unwrap()
            {
                Decision::Admitted { h_s, .. } => h.push(h_s.per_rotation().value()),
                Decision::Rejected(r) => panic!("rejected: {r}"),
            }
        }
        assert!(h[0] <= h[1] + 1e-12, "beta=0 gives the least: {h:?}");
        assert!(h[1] <= h[2] + 1e-12, "beta=1 gives the most: {h:?}");
        assert!(h[2] > h[0], "the spread is non-trivial: {h:?}");
    }

    #[test]
    fn release_returns_bandwidth() {
        let mut s = state();
        let cfg = CacConfig::default();
        let Decision::Admitted { id, .. } = s
            .admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap()
        else {
            panic!("expected admission")
        };
        assert!(s.host_busy(HostId {
            ring: 0,
            station: 0
        }));
        s.release(id).unwrap();
        assert!(s.active().is_empty());
        assert!((s.available_on(0).as_millis() - 7.2).abs() < 1e-9);
        assert!((s.available_on(1).as_millis() - 7.2).abs() < 1e-9);
        assert!(matches!(s.release(id), Err(CacError::UnknownConnection(_))));
    }

    #[test]
    fn existing_deadlines_are_protected() {
        let mut s = state();
        // Admit one connection with a deadline so tight that almost any
        // added disturbance would violate it; with beta=0 it is left with
        // a bare-minimum allocation and thus no slack.
        let cfg_tight = CacConfig::default().with_beta(0.0);
        let first = s
            .admit(spec((0, 0), (1, 0), 60.0), &cfg_tight.clone().into())
            .unwrap();
        let Decision::Admitted { delay_bound, .. } = first else {
            panic!("first must be admitted")
        };
        // Tighten: record how close the first connection runs.
        assert!(delay_bound <= Seconds::from_millis(60.0));
        // Request a second connection sharing both rings. Whatever the
        // decision, the first connection's deadline must still hold.
        let cfg = CacConfig::default();
        let _ = s
            .admit(spec((0, 1), (1, 1), 60.0), &cfg.clone().into())
            .unwrap();
        let delays = s.current_delays(&cfg).unwrap();
        for (i, (_, d)) in delays.iter().enumerate() {
            assert!(
                *d <= s.active()[i].spec.deadline,
                "connection {i} violated after admission"
            );
        }
    }

    #[test]
    fn fills_ring_until_exhausted() {
        let mut s = state();
        let cfg = CacConfig::default().with_beta(1.0);
        let mut admitted = 0;
        // Station indices cycle through ring 0's four hosts; allow
        // multiple per host for this capacity test.
        for k in 0..8 {
            let d = s
                .admit(
                    spec((0, k % 4), (1 + (k % 2), k % 4), 120.0),
                    &cfg.clone().into(),
                )
                .unwrap();
            if d.is_admitted() {
                admitted += 1;
            } else {
                break;
            }
        }
        // beta = 1 grabs everything useful; the ring saturates quickly.
        assert!(admitted >= 1);
        assert!(
            admitted < 8,
            "greedy allocation must eventually exhaust ring 0"
        );
    }

    #[test]
    fn request_reports_cache_hits() {
        let mut s = state();
        let cfg = CacConfig::fast();
        assert!(s.last_cache_stats().is_none());
        s.admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap();
        let first = s.last_cache_stats().expect("stats after a request");
        // Even a lone request reuses its stage-1 analyses and the muxes
        // untouched between the feasibility check and the searches.
        assert!(first.stage1_hits > 0, "{first:?}");
        // A second request runs its line search against the first as
        // background: the background-only muxes are analyzed once and
        // then served from cache on every probe.
        s.admit(spec((1, 0), (2, 0), 120.0), &cfg.clone().into())
            .unwrap();
        let second = s.last_cache_stats().expect("stats after a request");
        assert!(second.mux_hits > 0, "{second:?}");
        assert!(second.mux_hit_rate() > 0.0);
        assert!(second.stage1_hit_rate() > 0.0);
    }

    #[test]
    fn persistent_cache_warms_repeated_requests() {
        let cfg = CacConfig::fast();
        let mut s = state();
        s.persist_eval_cache(true);
        // An impossible deadline is rejected at step 2 without touching
        // the active set, so the carried cache stays valid.
        let sp = spec((0, 0), (1, 0), 1.0);
        assert!(!s
            .admit(sp.clone(), &cfg.clone().into())
            .unwrap()
            .is_admitted());
        // Retrying the identical request is served entirely from the
        // carried cache: zero misses in either stage.
        assert!(!s.admit(sp, &cfg.clone().into()).unwrap().is_admitted());
        let second = s.last_cache_stats().expect("stats recorded");
        assert_eq!(second.stage1_misses, 0, "{second:?}");
        assert_eq!(second.mux_misses, 0, "{second:?}");
        assert!(second.stage1_hits > 0 && second.mux_hits > 0, "{second:?}");
    }

    #[test]
    fn persistent_cache_does_not_change_decisions() {
        let cfg = CacConfig::fast();
        let mut plain = state();
        let mut warmed = state();
        warmed.persist_eval_cache(true);
        // A mix of admissions and rejections over shared envelopes; the
        // admitted allocations must agree bit-for-bit.
        let requests = [
            spec((0, 0), (1, 0), 100.0),
            spec((0, 1), (1, 1), 1.0),
            spec((0, 1), (1, 1), 80.0),
            spec((1, 0), (2, 0), 120.0),
        ];
        for (k, sp) in requests.into_iter().enumerate() {
            let a = plain.admit(sp.clone(), &cfg.clone().into()).unwrap();
            let b = warmed.admit(sp, &cfg.clone().into()).unwrap();
            match (a, b) {
                (
                    Decision::Admitted {
                        h_s: hs_a,
                        h_r: hr_a,
                        delay_bound: d_a,
                        ..
                    },
                    Decision::Admitted {
                        h_s: hs_b,
                        h_r: hr_b,
                        delay_bound: d_b,
                        ..
                    },
                ) => {
                    assert_eq!(
                        hs_a.per_rotation().value().to_bits(),
                        hs_b.per_rotation().value().to_bits(),
                        "request {k}: H_S diverged"
                    );
                    assert_eq!(
                        hr_a.per_rotation().value().to_bits(),
                        hr_b.per_rotation().value().to_bits(),
                        "request {k}: H_R diverged"
                    );
                    assert_eq!(
                        d_a.value().to_bits(),
                        d_b.value().to_bits(),
                        "request {k}: delay bound diverged"
                    );
                }
                (Decision::Rejected(_), Decision::Rejected(_)) => {}
                (a, b) => panic!("request {k}: decisions diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn request_fixed_respects_budget_and_deadline() {
        let mut s = state();
        let cfg = CacConfig::default();
        let h = SyncBandwidth::new(Seconds::from_millis(2.4));
        let d = s
            .admit(
                spec((0, 0), (1, 0), 100.0),
                &AdmissionOptions::fixed(cfg.clone(), h, h),
            )
            .unwrap();
        assert!(d.is_admitted());
        // Asking for more than remains on ring 0 is rejected outright.
        let whole = SyncBandwidth::new(Seconds::from_millis(7.0));
        let d = s
            .admit(
                spec((0, 1), (2, 0), 100.0),
                &AdmissionOptions::fixed(cfg.clone(), whole, h),
            )
            .unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::SourceBandwidthExhausted { .. })
        ));
        // An undersized fixed allocation fails the deadline check.
        let tiny = SyncBandwidth::new(Seconds::from_micros(200.0));
        let d = s
            .admit(
                spec((0, 1), (2, 0), 100.0),
                &AdmissionOptions::fixed(cfg.clone(), tiny, tiny),
            )
            .unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::InfeasibleAtMaximum { .. })
        ));
    }

    #[test]
    fn malformed_requests_rejected_as_errors() {
        let mut s = state();
        let cfg = CacConfig::default();
        let mut bad = spec((0, 0), (1, 0), 100.0);
        bad.dest.ring = 0;
        assert!(matches!(
            s.admit(bad, &cfg.clone().into()),
            Err(CacError::InvalidRequest(_))
        ));
        let mut bad = spec((0, 0), (1, 0), 100.0);
        bad.deadline = Seconds::ZERO;
        assert!(matches!(
            s.admit(bad, &cfg.clone().into()),
            Err(CacError::InvalidRequest(_))
        ));
        let mut bad = spec((0, 0), (1, 0), 100.0);
        bad.source.station = 77;
        assert!(matches!(
            s.admit(bad, &cfg.clone().into()),
            Err(CacError::InvalidRequest(_))
        ));
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn beta_validated() {
        let _ = CacConfig::default().with_beta(1.5);
    }

    #[test]
    fn slacks_are_nonnegative_and_deadline_bounded() {
        let mut s = state();
        let cfg = CacConfig::fast();
        s.admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap();
        s.admit(spec((1, 0), (2, 0), 120.0), &cfg.clone().into())
            .unwrap();
        let slacks = s.slacks(&cfg).unwrap();
        assert_eq!(slacks.len(), s.active().len());
        for ((id, slack), c) in slacks.iter().zip(s.active()) {
            assert_eq!(*id, c.id);
            assert!(!slack.is_negative(), "negative slack for {id}");
            assert!(*slack <= c.spec.deadline);
        }
    }

    #[test]
    fn fast_config_is_cheaper_but_same_kind() {
        let fast = CacConfig::fast();
        let full = CacConfig::default();
        assert!(fast.search_iterations <= full.search_iterations);
        assert!(fast.eval.flatten_subdivisions <= full.eval.flatten_subdivisions);
        assert_eq!(fast.beta, full.beta);
    }

    #[test]
    fn reject_reason_display() {
        let r = RejectReason::SourceBandwidthExhausted {
            available: Seconds::from_millis(1.0),
            required: Seconds::from_millis(2.0),
        };
        assert!(r.to_string().contains("source ring"));
        let r = RejectReason::DestBandwidthExhausted {
            available: Seconds::from_millis(1.0),
            required: Seconds::from_millis(2.0),
        };
        assert!(r.to_string().contains("destination ring"));
        let r = RejectReason::InfeasibleAtMaximum {
            detail: "why".into(),
        };
        assert!(r.to_string().contains("why"));
    }

    #[test]
    fn decision_is_admitted_helper() {
        let d = Decision::Rejected(RejectReason::InfeasibleAtMaximum {
            detail: String::new(),
        });
        assert!(!d.is_admitted());
    }

    #[test]
    fn buffer_limited_network_rejects_what_it_cannot_buffer() {
        use hetnet_traffic::units::Bits;
        // With per-host buffers far below the Theorem-1.2 requirement of
        // this source, admission must fail outright.
        let net = HetNetwork::paper_topology().with_buffers(Some(Bits::from_kbits(10.0)), None);
        let mut s = NetworkState::new(net);
        let d = s
            .admit(spec((0, 0), (1, 0), 100.0), &CacConfig::fast().into())
            .unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::InfeasibleAtMaximum { .. })
        ));
    }

    #[test]
    fn observer_sees_every_decision_with_clock_and_seq() {
        use std::sync::Mutex;
        struct Recorder(Arc<Mutex<Vec<(u64, f64, bool)>>>);
        impl DecisionObserver for Recorder {
            fn on_decision(&mut self, r: &DecisionRecord<'_>) {
                self.0
                    .lock()
                    .unwrap()
                    .push((r.seq, r.at.value(), r.decision.is_admitted()));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut s = state();
        let cfg = CacConfig::fast();
        s.set_observer(Some(Box::new(Recorder(Arc::clone(&seen)))));
        s.set_clock(Seconds::new(1.5));
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap()
            .is_admitted());
        s.set_clock(Seconds::new(2.5));
        assert!(!s
            .admit(spec((0, 1), (1, 1), 1.0), &cfg.clone().into())
            .unwrap()
            .is_admitted());
        assert_eq!(s.decisions(), 2);
        assert_eq!(s.clock(), Seconds::new(2.5));
        let _obs = s.take_observer().expect("installed above");
        assert!(s.take_observer().is_none());
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, 1.5, true));
        assert_eq!(seen[1], (1, 2.5, false));
    }

    #[test]
    fn decision_tracing_explains_admits_and_rejects() {
        let mut s = state();
        let cfg = CacConfig::fast();
        // Off by default: decisions leave no trace.
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap()
            .is_admitted());
        assert!(s.last_decision_trace().is_none());

        s.set_decision_tracing(true);
        // Admit: allocation recorded, candidate entry last with its id,
        // nonnegative slack, no binding constraint.
        let d = s
            .admit(spec((1, 0), (2, 0), 120.0), &cfg.clone().into())
            .unwrap();
        let Decision::Admitted {
            id,
            h_s,
            delay_bound,
            ..
        } = d
        else {
            panic!("expected admission")
        };
        let t = s.last_decision_trace().expect("trace recorded").clone();
        assert!(t.admitted);
        assert_eq!(t.seq, 1);
        assert!(t.binding.is_none());
        let (th_s, _) = t.allocation.expect("allocation recorded");
        assert_eq!(
            th_s.per_rotation().value().to_bits(),
            h_s.per_rotation().value().to_bits()
        );
        assert_eq!(t.connections.len(), s.active().len());
        let cand = t.candidate().expect("candidate entry");
        assert_eq!(cand.id, Some(id));
        assert_eq!(
            cand.report.total.value().to_bits(),
            delay_bound.value().to_bits()
        );
        assert!(!cand.slack.is_negative());
        assert!(t.cache.stage1_hits > 0 || t.cache.stage1_misses > 0);

        // Reject (deadline): the binding constraint names the candidate
        // (no id) and a dominant stage, with positive excess.
        let d = s
            .admit(spec((0, 1), (1, 1), 1.0), &cfg.clone().into())
            .unwrap();
        assert!(!d.is_admitted());
        let t = s.last_decision_trace().expect("trace recorded");
        assert!(!t.admitted);
        match t.binding.as_ref().expect("reject names a constraint") {
            BindingConstraint::DeadlineExceeded {
                connection,
                excess,
                deadline,
                delay,
                ..
            } => {
                assert_eq!(*connection, None);
                assert!(excess.value() > 0.0);
                assert!((delay.value() - deadline.value() - excess.value()).abs() < 1e-12);
            }
            other => panic!("unexpected binding: {other:?}"),
        }
        assert_eq!(t.candidate().expect("evaluated paths").id, None);
        assert!(t.candidate().unwrap().slack.is_negative());
        assert!(!t.to_json_line().is_empty());

        // Disabling clears the stored trace.
        s.set_decision_tracing(false);
        assert!(s.last_decision_trace().is_none());
    }

    #[test]
    fn fixed_rejects_carry_bindings_too() {
        let mut s = state();
        s.set_decision_tracing(true);
        let cfg = CacConfig::default();
        // Oversized: source-bandwidth binding.
        let whole = SyncBandwidth::new(Seconds::from_millis(8.0));
        let d = s
            .admit(
                spec((0, 0), (1, 0), 100.0),
                &AdmissionOptions::fixed(cfg.clone(), whole, whole),
            )
            .unwrap();
        assert!(!d.is_admitted());
        let t = s.last_decision_trace().unwrap();
        assert!(matches!(
            t.binding,
            Some(BindingConstraint::SourceBandwidth { .. })
        ));
        assert!(t.allocation.is_none());

        // Undersized: at 200 us per rotation the source MAC can't even
        // keep up with the arrival rate — the binding pinpoints the
        // unstable server rather than a bare "infeasible".
        let tiny = SyncBandwidth::new(Seconds::from_micros(200.0));
        let d = s
            .admit(
                spec((0, 0), (1, 0), 100.0),
                &AdmissionOptions::fixed(cfg.clone(), tiny, tiny),
            )
            .unwrap();
        assert!(!d.is_admitted());
        let t = s.last_decision_trace().unwrap();
        match t.binding.as_ref().expect("binding named") {
            BindingConstraint::ServerUnstable { detail } => {
                assert!(detail.contains("unstable"), "{detail}");
            }
            other => panic!("unexpected binding: {other:?}"),
        }
        // Fixed admissions trace too, with all-zero cache counters.
        let h = SyncBandwidth::new(Seconds::from_millis(2.4));
        let d = s
            .admit(
                spec((0, 0), (1, 0), 100.0),
                &AdmissionOptions::fixed(cfg, h, h),
            )
            .unwrap();
        assert!(d.is_admitted());
        let t = s.last_decision_trace().unwrap();
        assert!(t.admitted && t.binding.is_none());
        assert_eq!(t.cache, CacheStats::default());
        assert!(t.candidate().unwrap().id.is_some());
    }

    #[test]
    fn observer_receives_the_trace_when_tracing() {
        use std::sync::Mutex;
        type Seen = Arc<Mutex<Vec<(u64, bool, Option<String>)>>>;
        struct Recorder(Seen);
        impl DecisionObserver for Recorder {
            fn on_decision(&mut self, r: &DecisionRecord<'_>) {
                self.0.lock().unwrap().push((
                    r.seq,
                    r.trace.is_some(),
                    r.trace
                        .and_then(|t| t.binding.as_ref())
                        .map(|b| b.kind().to_string()),
                ));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut s = state();
        let cfg = CacConfig::fast();
        s.set_observer(Some(Box::new(Recorder(Arc::clone(&seen)))));
        s.admit(spec((0, 0), (1, 0), 100.0), &cfg.clone().into())
            .unwrap();
        s.set_decision_tracing(true);
        s.admit(spec((0, 1), (1, 1), 1.0), &cfg.clone().into())
            .unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, false, None));
        assert_eq!(seen[1], (1, true, Some("deadline".into())));
    }

    #[test]
    fn ring_failure_tears_down_and_reclaims() {
        let mut s = state();
        let cfg = CacConfig::fast();
        let opts: AdmissionOptions = cfg.clone().into();
        // Two connections touch ring 1, one does not.
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        assert!(s
            .admit(spec((1, 1), (2, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        assert!(s
            .admit(spec((0, 1), (2, 1), 100.0), &opts)
            .unwrap()
            .is_admitted());
        let report = s.set_component_down(Component::Ring(RingId(1))).unwrap();
        assert!(!report.already_down);
        assert_eq!(report.torn.len(), 2);
        assert!(report.reclaimed_s.value() > 0.0);
        assert!(report.reclaimed_r.value() > 0.0);
        assert_eq!(s.active().len(), 1);
        // Ring 1's budget is fully back; ring 0 still carries the survivor.
        assert!((s.available_on(1).as_millis() - 7.2).abs() < 1e-9);
        assert!(s.available_on(0) < Seconds::from_millis(7.2));
        // Downing again is a no-op.
        let again = s.set_component_down(Component::Ring(RingId(1))).unwrap();
        assert!(again.already_down);
        assert!(again.torn.is_empty());
    }

    #[test]
    fn down_component_rejects_without_evaluation() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        s.set_component_down(Component::IfDev(RingId(2))).unwrap();
        s.set_decision_tracing(true);
        let d = s.admit(spec((0, 0), (2, 0), 100.0), &opts).unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::ComponentUnavailable {
                component: Component::IfDev(RingId(2))
            })
        ));
        let t = s.last_decision_trace().unwrap();
        assert_eq!(t.binding.as_ref().unwrap().kind(), "component_down");
        assert!(t.connections.is_empty());
        // A path avoiding ring 2 is unaffected.
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        // Restore; the previously blocked path admits again.
        assert!(s.set_component_up(Component::IfDev(RingId(2))).unwrap());
        assert!(!s.set_component_up(Component::IfDev(RingId(2))).unwrap());
        assert!(s
            .admit(spec((0, 1), (2, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
    }

    #[test]
    fn link_failure_hits_only_routed_pairs() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        assert!(s
            .admit(spec((1, 1), (2, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        // Find the link carrying the 0->1 route and fail it.
        let link = s.network().route_between(0, 1).unwrap()[0];
        let report = s.set_component_down(Component::Link(link)).unwrap();
        assert_eq!(report.torn.len(), 1);
        assert_eq!(report.torn[0].spec.source.ring, 0);
        // The fully-meshed backbone routes 1->2 over a different link.
        assert_eq!(s.active().len(), 1);
        let d = s.admit(spec((0, 1), (1, 2), 100.0), &opts).unwrap();
        assert!(matches!(
            d,
            Decision::Rejected(RejectReason::ComponentUnavailable { .. })
        ));
    }

    #[test]
    fn unknown_components_are_rejected() {
        let mut s = state();
        assert!(matches!(
            s.set_component_down(Component::Ring(RingId(9))),
            Err(CacError::InvalidNetwork(_))
        ));
        assert!(matches!(
            s.set_component_up(Component::Link(hetnet_atm::topology::LinkId(99))),
            Err(CacError::InvalidNetwork(_))
        ));
    }

    #[test]
    fn snapshot_restore_is_lossless_here() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        s.set_clock(Seconds::new(12.5));
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        assert!(s
            .admit(spec((1, 1), (2, 0), 90.0), &opts)
            .unwrap()
            .is_admitted());
        s.set_component_down(Component::Ring(RingId(2))).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.version, crate::snapshot::SNAPSHOT_VERSION);
        assert_eq!(snap.connections.len(), 1); // ring-2 teardown removed one
        assert_eq!(snap.down, vec![Component::Ring(RingId(2))]);

        let mut restored =
            NetworkState::from_snapshot(HetNetwork::paper_topology(), &snap).unwrap();
        assert_eq!(restored.snapshot().to_json(), snap.to_json());
        assert_eq!(
            restored.available_on(0).value().to_bits(),
            s.available_on(0).value().to_bits()
        );
        assert_eq!(
            restored.clock().value().to_bits(),
            s.clock().value().to_bits()
        );
        assert_eq!(restored.decisions(), s.decisions());
        // Both copies now make bit-identical decisions.
        let sp = spec((0, 1), (1, 2), 100.0);
        match (
            s.admit(sp.clone(), &opts).unwrap(),
            restored.admit(sp, &opts).unwrap(),
        ) {
            (
                Decision::Admitted {
                    id: ia, h_s: ha, ..
                },
                Decision::Admitted {
                    id: ib, h_s: hb, ..
                },
            ) => {
                assert_eq!(ia, ib);
                assert_eq!(
                    ha.per_rotation().value().to_bits(),
                    hb.per_rotation().value().to_bits()
                );
            }
            (a, b) => panic!("diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn restore_rejects_mismatches() {
        let s = state();
        let mut snap = s.snapshot();
        snap.version = 99;
        assert!(matches!(
            NetworkState::new(HetNetwork::paper_topology()).restore(&snap),
            Err(CacError::SnapshotMismatch(_))
        ));
        let mut snap = s.snapshot();
        snap.topology.rings = 7;
        assert!(matches!(
            NetworkState::new(HetNetwork::paper_topology()).restore(&snap),
            Err(CacError::SnapshotMismatch(_))
        ));
    }

    #[test]
    fn reconfigure_noop_keeps_every_allocation_bit_identical() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        for sp in [spec((0, 0), (1, 0), 100.0), spec((1, 1), (2, 0), 90.0)] {
            assert!(s.admit(sp, &opts).unwrap().is_admitted());
        }
        let before: Vec<u64> = s
            .active()
            .iter()
            .map(|c| c.h_s.per_rotation().value().to_bits())
            .collect();
        let seq = s.decisions();
        let report = s.reconfigure(&ReconfigPlan::default(), &opts).unwrap();
        assert_eq!(report.unchanged.len(), 2);
        assert!(report.renegotiated.is_empty());
        assert!(report.dropped.is_empty());
        // Reconfiguration consumes exactly one decision sequence number.
        assert_eq!(s.decisions(), seq + 1);
        let after: Vec<u64> = s
            .active()
            .iter()
            .map(|c| c.h_s.per_rotation().value().to_bits())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn reconfigure_matches_fresh_engine_at_new_parameters() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        let specs = [
            spec((0, 0), (1, 0), 100.0),
            spec((1, 1), (2, 0), 90.0),
            spec((2, 2), (0, 1), 110.0),
        ];
        for sp in &specs {
            assert!(s.admit(sp.clone(), &opts).unwrap().is_admitted());
        }
        let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(12.0));
        let report = s.reconfigure(&plan, &opts).unwrap();
        assert_eq!(report.survivors(), 3);
        assert!(report.dropped.is_empty());
        // A longer TTRT moves the allocation line: everything renegotiates.
        assert_eq!(report.renegotiated.len(), 3);
        assert!(report.new_allocatable[0] > report.old_allocatable[0]);

        // Fresh engine built at the new parameters, fed the survivors in
        // admission order, must land on the same bits.
        let rings = vec![
            RingConfig {
                ttrt: Seconds::from_millis(12.0),
                ..RingConfig::standard()
            };
            3
        ];
        let net = HetNetwork::paper_topology()
            .with_ring_configs(rings)
            .unwrap();
        let mut fresh = NetworkState::new(net);
        for sp in &specs {
            assert!(fresh.admit(sp.clone(), &opts).unwrap().is_admitted());
        }
        for (a, b) in s.active().iter().zip(fresh.active()) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.h_s.per_rotation().value().to_bits(),
                b.h_s.per_rotation().value().to_bits()
            );
            assert_eq!(
                a.h_r.per_rotation().value().to_bits(),
                b.h_r.per_rotation().value().to_bits()
            );
            assert_eq!(
                a.delay_bound.value().to_bits(),
                b.delay_bound.value().to_bits()
            );
        }
        for ring in 0..3 {
            assert_eq!(
                s.available_on(ring).value().to_bits(),
                fresh.available_on(ring).value().to_bits()
            );
        }
        // And the next decision is bit-identical too (admitted or not).
        let next = spec((0, 2), (2, 1), 100.0);
        let (da, db) = (
            s.admit(next.clone(), &opts).unwrap(),
            fresh.admit(next, &opts).unwrap(),
        );
        assert_eq!(format!("{da:?}"), format!("{db:?}"));
    }

    #[test]
    fn reconfigure_shrink_drops_victims_and_reclaims_budget() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        let mut admitted = 0usize;
        for station in 0..4 {
            for (src, dst) in [(0, 1), (1, 2), (2, 0)] {
                if s.admit(spec((src, station), (dst, station), 60.0), &opts)
                    .unwrap()
                    .is_admitted()
                {
                    admitted += 1;
                }
            }
        }
        assert!(admitted >= 3, "load generator admitted only {admitted}");
        // Shrink TTRT and grow the overhead until the allocatable budget
        // `TTRT − Δ` is a sliver: victims must fall out.
        let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(6.0))
            .with_overhead(Seconds::from_millis(5.5));
        let report = s.reconfigure(&plan, &opts).unwrap();
        assert!(
            !report.dropped.is_empty(),
            "expected drops: {}",
            report.summary()
        );
        assert_eq!(report.survivors() + report.dropped.len(), admitted);
        assert!(report.reclaimed_s.value() > 0.0);
        // Surviving state is internally consistent: the active set and the
        // snapshot agree and every remaining allocation fits the new budget.
        let snap = s.snapshot();
        assert_eq!(snap.connections.len(), report.survivors());
        assert_eq!(snap.rings[0].ttrt, Seconds::from_millis(6.0));
        for ring in 0..3 {
            assert!(s.available_on(ring).value() >= 0.0);
        }
    }

    #[test]
    fn reconfigure_snapshot_restores_onto_retuned_rings() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(10.0))
            .with_overhead(Seconds::from_millis(1.0));
        s.reconfigure(&plan, &opts).unwrap();
        let snap = s.snapshot();
        // Restoring onto a *stock* topology adopts the snapshot's rings.
        let mut restored = NetworkState::new(HetNetwork::paper_topology());
        restored.restore(&snap).unwrap();
        assert_eq!(restored.snapshot().to_json(), snap.to_json());
        let next = spec((1, 2), (2, 2), 100.0);
        match (
            s.admit(next.clone(), &opts).unwrap(),
            restored.admit(next, &opts).unwrap(),
        ) {
            (Decision::Admitted { h_s: ha, .. }, Decision::Admitted { h_s: hb, .. }) => {
                assert_eq!(
                    ha.per_rotation().value().to_bits(),
                    hb.per_rotation().value().to_bits()
                );
            }
            (a, b) => panic!("diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn reconfigure_rejects_invalid_plans_without_side_effects() {
        let mut s = state();
        let opts: AdmissionOptions = CacConfig::fast().into();
        assert!(s
            .admit(spec((0, 0), (1, 0), 100.0), &opts)
            .unwrap()
            .is_admitted());
        let before = s.snapshot().to_json();
        let bad_beta = ReconfigPlan::default().with_beta(2.0);
        assert!(s.reconfigure(&bad_beta, &opts).is_err());
        // Overhead >= TTRT leaves no allocatable budget and is refused.
        let bad_overhead = ReconfigPlan::default().with_overhead(Seconds::from_millis(9.0));
        assert!(s.reconfigure(&bad_overhead, &opts).is_err());
        assert_eq!(s.snapshot().to_json(), before);
    }
}
