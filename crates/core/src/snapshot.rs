//! Versioned snapshots of the admission state.
//!
//! A [`StateSnapshot`] captures everything [`NetworkState`] decides
//! from — the active connections with their allocations, the
//! component-health set, the id counter, the logical clock, and the
//! decision sequence number — in a plain-data form that can be stored,
//! rendered as JSON, and restored *losslessly*:
//! `restore(snapshot(s))` reproduces a state whose every future
//! decision is bit-identical to `s`'s (proven by the proptest in
//! `tests/snapshot_roundtrip.rs`).
//!
//! Bit-identity rests on two properties. First, the snapshot keeps the
//! connections in admission order and carries their `f64` fields
//! verbatim; re-allocating them in that order reproduces the per-ring
//! allocation tables' internal summation order, so
//! [`NetworkState::available_on`] returns the *same bits* after a
//! restore. Second, the JSON rendering formats every float with Rust's
//! shortest-roundtrip `{}` formatting, which is injective on bit
//! patterns (NaN aside) — equal JSON strings mean equal states, which
//! is what the pinned golden snapshot in the test suite locks down.
//!
//! The evaluator cache is deliberately *not* part of a snapshot: cache
//! hits return exactly what the miss path would compute, so a restored
//! state with a cold cache makes the same decisions (only marginally
//! slower at first).

use crate::cac::NetworkState;
use crate::connection::{ConnectionId, ConnectionSpec};
use crate::network::{Component, HostId, TopologySummary};
use hetnet_fddi::ring::{RingConfig, SyncBandwidth};
use hetnet_traffic::envelope::SharedEnvelope;
use hetnet_traffic::units::Seconds;
use std::fmt;
use std::fmt::Write as _;

/// Format version stamped into every snapshot. Bump on any change to
/// the snapshot's field set or meaning; [`NetworkState::restore`]
/// refuses other versions rather than guessing.
///
/// v2 added the per-connection backbone traffic `class` (scheduler
/// support); v3 added the per-ring parameters (`rings`), so a snapshot
/// taken after a live reconfiguration restores onto the *reconfigured*
/// ring timing rather than whatever the base topology was built with.
/// Older versions are refused.
pub const SNAPSHOT_VERSION: u32 = 3;

/// One active connection as captured by a snapshot: the admission-time
/// contract plus the committed allocations.
#[derive(Clone)]
pub struct ConnectionSnapshot {
    /// The id assigned at admission.
    pub id: ConnectionId,
    /// Sending host.
    pub source: HostId,
    /// Receiving host.
    pub dest: HostId,
    /// The source traffic envelope (shared, not copied: envelopes are
    /// immutable, so the snapshot and the live state can alias).
    pub envelope: SharedEnvelope,
    /// The connection's end-to-end deadline.
    pub deadline: Seconds,
    /// Backbone scheduler traffic class.
    pub class: u8,
    /// Synchronous bandwidth held on the source ring.
    pub h_s: SyncBandwidth,
    /// Synchronous bandwidth held on the destination ring.
    pub h_r: SyncBandwidth,
    /// The worst-case delay bound at admission time.
    pub delay_bound: Seconds,
}

impl fmt::Debug for ConnectionSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnectionSnapshot")
            .field("id", &self.id)
            .field("source", &self.source)
            .field("dest", &self.dest)
            .field("envelope", &self.envelope.describe())
            .field("deadline", &self.deadline)
            .field("class", &self.class)
            .field("h_s", &self.h_s)
            .field("h_r", &self.h_r)
            .field("delay_bound", &self.delay_bound)
            .finish()
    }
}

impl ConnectionSnapshot {
    /// The connection spec this snapshot entry restores to.
    #[must_use]
    pub fn spec(&self) -> ConnectionSpec {
        ConnectionSpec {
            source: self.source,
            dest: self.dest,
            envelope: std::sync::Arc::clone(&self.envelope),
            deadline: self.deadline,
            class: self.class,
        }
    }
}

/// A versioned, restorable capture of a [`NetworkState`].
///
/// Produced by [`NetworkState::snapshot`]; consumed by
/// [`NetworkState::restore`] and [`NetworkState::from_snapshot`].
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when produced by this
    /// build).
    pub version: u32,
    /// Shape of the network the snapshot was taken from; restore
    /// refuses a state whose topology differs.
    pub topology: TopologySummary,
    /// Ring parameters at capture time. [`NetworkState::restore`]
    /// *adopts* these — a snapshot taken after a live reconfiguration
    /// carries the retuned TTRT/overhead with it, so restoring onto a
    /// stock topology still reproduces the reconfigured state
    /// bit-for-bit.
    pub rings: Vec<RingConfig>,
    /// Active connections in admission order (ascending id).
    pub connections: Vec<ConnectionSnapshot>,
    /// Components marked down at capture time, in sorted order.
    pub down: Vec<Component>,
    /// The next connection id the state would assign.
    pub next_id: u64,
    /// The logical clock.
    pub clock: Seconds,
    /// Completed decisions so far.
    pub decision_seq: u64,
}

impl StateSnapshot {
    /// Hand-written JSON rendering. Every float uses Rust's
    /// shortest-roundtrip formatting, so two snapshots render equal
    /// strings iff their numeric fields are bit-identical — string
    /// comparison of `to_json()` outputs is a bit-identity check.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.connections.len() * 256);
        let _ = write!(
            out,
            "{{\"version\":{},\"topology\":{{\"rings\":{},\"hosts_per_ring\":{},\
             \"switches\":{},\"links\":{}}},",
            self.version,
            self.topology.rings,
            self.topology.hosts_per_ring,
            self.topology.switches,
            self.topology.links
        );
        out.push_str("\"rings\":[");
        for (i, r) in self.rings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"bandwidth_bps\":{},\"ttrt_s\":{},\"overhead_s\":{},\"propagation_s\":{}}}",
                json_f64(r.bandwidth.value()),
                json_f64(r.ttrt.value()),
                json_f64(r.overhead.value()),
                json_f64(r.propagation.value()),
            );
        }
        out.push_str("],");
        let _ = write!(
            out,
            "\"next_id\":{},\"clock_s\":{},\"decision_seq\":{},",
            self.next_id,
            json_f64(self.clock.value()),
            self.decision_seq
        );
        out.push_str("\"down\":[");
        for (i, c) in self.down.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{}\",\"index\":{}}}", c.kind(), c.index());
        }
        out.push_str("],\"connections\":[");
        for (i, c) in self.connections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"source\":[{},{}],\"dest\":[{},{}],\"deadline_s\":{},\
                 \"class\":{},\"h_s_s\":{},\"h_r_s\":{},\"delay_bound_s\":{},\"envelope\":",
                c.id.0,
                c.source.ring,
                c.source.station,
                c.dest.ring,
                c.dest.station,
                json_f64(c.deadline.value()),
                c.class,
                json_f64(c.h_s.per_rotation().value()),
                json_f64(c.h_r.per_rotation().value()),
                json_f64(c.delay_bound.value()),
            );
            out.push_str(&c.envelope.describe().to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Formats a float as a JSON value (`null` when non-finite); the same
/// convention as the decision-trace exporter.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Renders a snapshot as a short human summary (connection and
/// down-component counts), for log lines.
pub fn summarize(snap: &StateSnapshot) -> String {
    let mut s = format!(
        "snapshot v{}: {} connections, seq {}, clock {}",
        snap.version,
        snap.connections.len(),
        snap.decision_seq,
        snap.clock
    );
    if !snap.down.is_empty() {
        let _ = write!(s, ", {} components down", snap.down.len());
    }
    s
}

/// Compares two states for *observable* equality the way the recovery
/// tests do: equal snapshots render equal JSON. Exposed so service- and
/// bench-layer checks share one definition of "bit-identical".
#[must_use]
pub fn states_bit_identical(a: &NetworkState, b: &NetworkState) -> bool {
    a.snapshot().to_json() == b.snapshot().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
