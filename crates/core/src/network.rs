//! The heterogeneous network topology: FDDI rings joined to an ATM
//! backbone through interface devices.

use crate::error::CacError;
use hetnet_atm::topology::{Backbone, SwitchId};
pub use hetnet_atm::LinkId;
pub use hetnet_atm::Scheduler;
use hetnet_atm::{LinkConfig, SwitchConfig};
use hetnet_fddi::ring::RingConfig;
use hetnet_ifdev::IfDevConfig;
use hetnet_traffic::units::{Bits, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of one FDDI ring in the heterogeneous network.
///
/// A typed index: public topology lookups ([`HetNetwork::ring`],
/// [`HetNetwork::switch_of`], [`HetNetwork::route_between`],
/// [`crate::cac::NetworkState::available_on`]) take `impl Into<RingId>`,
/// so both `RingId` values and bare `usize` indices (converted at the
/// boundary) are accepted, but the signatures name the domain type.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RingId(pub usize);

impl RingId {
    /// The underlying ring index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for RingId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring-{}", self.0)
    }
}

/// A host on some ring: `station` indexes the hosts of that ring
/// (`0..hosts_per_ring`); the interface device is a separate, implicit
/// station.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct HostId {
    /// Ring index.
    pub ring: usize,
    /// Host station index on that ring.
    pub station: usize,
}

impl HostId {
    /// The ring this host sits on, as a typed id.
    #[must_use]
    pub fn ring_id(&self) -> RingId {
        RingId(self.ring)
    }
}

impl From<(usize, usize)> for HostId {
    /// `(ring, station)` in that order.
    fn from((ring, station): (usize, usize)) -> Self {
        Self { ring, station }
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}.{}", self.ring, self.station)
    }
}

/// A failable piece of the heterogeneous network, as seen by fault
/// injection and admission control.
///
/// Granularity follows the paper's server model: a connection crosses
/// its source ring, the source interface device, the backbone links of
/// its route, the destination interface device, and the destination
/// ring. Any of those going down makes the connection's path
/// unavailable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// An entire FDDI ring (trunk break / ring wrap failure): every
    /// connection sourced or sunk on it loses service.
    Ring(RingId),
    /// One backbone link between ATM switches.
    Link(LinkId),
    /// The interface device attaching ring `i` to its switch. Downing
    /// it severs the ring from the backbone but (unlike [`Self::Ring`])
    /// the model keeps same-switch semantics identical here: every
    /// connection touching the ring crosses its interface device.
    IfDev(RingId),
}

impl Component {
    /// Stable lowercase tag for JSON and metrics keys.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ring(_) => "ring",
            Self::Link(_) => "link",
            Self::IfDev(_) => "ifdev",
        }
    }

    /// The component's index within its kind.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Self::Ring(r) | Self::IfDev(r) => r.0,
            Self::Link(l) => l.0,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ring(r) => write!(f, "ring-{}", r.0),
            Self::Link(l) => write!(f, "link-{}", l.0),
            Self::IfDev(r) => write!(f, "ifdev-{}", r.0),
        }
    }
}

/// Compact shape of a [`HetNetwork`], for trace labels and reports.
///
/// Carries only counts — enough to identify *which* topology produced a
/// trace or report without serialising the full configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologySummary {
    /// Number of FDDI rings.
    pub rings: usize,
    /// Hosts per ring (the interface device is an extra station).
    pub hosts_per_ring: usize,
    /// Backbone switch count.
    pub switches: usize,
    /// Backbone link count.
    pub links: usize,
}

impl fmt::Display for TopologySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rings x {} hosts, {} switches, {} links",
            self.rings, self.hosts_per_ring, self.switches, self.links
        )
    }
}

/// The FDDI-ATM-FDDI heterogeneous network.
///
/// Ring `i` attaches through interface device `i` (an extra station on
/// the ring) and an access link to backbone switch `i`.
#[derive(Clone, Debug)]
pub struct HetNetwork {
    rings: Vec<RingConfig>,
    hosts_per_ring: usize,
    ifdev: IfDevConfig,
    backbone: Backbone,
    access_link: LinkConfig,
    host_buffer: Option<Bits>,
    device_buffer: Option<Bits>,
    /// Output-port scheduling discipline of every multiplexer in the
    /// network (access uplinks, backbone links, egress downlinks).
    scheduler: Scheduler,
    /// Minimum-hop backbone routes between ordered ring pairs,
    /// materialized on first use and cached for the run's lifetime.
    /// Eager all-pairs precompute is `O(rings²·hops)` memory — ~1 GB
    /// by two thousand rings — while a churn run only ever touches the
    /// pairs its schedule names, so the cache stays proportional to
    /// the traffic pattern and thousands-of-rings grids fit easily.
    /// `None` records an unreachable pair.
    routes: RouteCache,
}

/// Thread-safe lazy route store. Each miss rebuilds the source's full
/// shortest-path tree and reconstructs just the requested destination:
/// identical link-id tie-breaking to the old eager precompute, so the
/// cached route for a pair never depends on query order.
type RouteMap = HashMap<(u32, u32), Option<Arc<[LinkId]>>>;

#[derive(Debug, Default)]
struct RouteCache(std::sync::RwLock<RouteMap>);

impl Clone for RouteCache {
    fn clone(&self) -> Self {
        Self(std::sync::RwLock::new(
            self.0.read().expect("route cache poisoned").clone(),
        ))
    }
}

impl HetNetwork {
    /// Builds and validates a network.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] if any component is
    /// malformed or the backbone does not provide one switch per ring.
    pub fn new(
        rings: Vec<RingConfig>,
        hosts_per_ring: usize,
        ifdev: IfDevConfig,
        backbone: Backbone,
        access_link: LinkConfig,
    ) -> Result<Self, CacError> {
        if rings.is_empty() {
            return Err(CacError::InvalidNetwork(
                "at least one ring required".into(),
            ));
        }
        if hosts_per_ring == 0 {
            return Err(CacError::InvalidNetwork(
                "at least one host per ring required".into(),
            ));
        }
        if backbone.switch_count() < rings.len() {
            return Err(CacError::InvalidNetwork(format!(
                "backbone has {} switches for {} rings",
                backbone.switch_count(),
                rings.len()
            )));
        }
        for (i, r) in rings.iter().enumerate() {
            r.validate()
                .map_err(|m| CacError::InvalidNetwork(format!("ring {i}: {m}")))?;
        }
        ifdev
            .validate()
            .map_err(|m| CacError::InvalidNetwork(format!("interface device: {m}")))?;
        access_link
            .validate()
            .map_err(|m| CacError::InvalidNetwork(format!("access link: {m}")))?;
        Ok(Self {
            rings,
            hosts_per_ring,
            ifdev,
            backbone,
            access_link,
            host_buffer: None,
            device_buffer: None,
            scheduler: Scheduler::Fifo,
            routes: RouteCache::default(),
        })
    }

    /// Replaces the output-port scheduling discipline used at every
    /// multiplexer of the network. The default is [`Scheduler::Fifo`]
    /// (the paper's analysis); weighted disciplines bound each traffic
    /// class separately and need a weight entry for every class that
    /// will be admitted.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler configuration is invalid (e.g. an empty
    /// or zero weight map) — misconfiguration is a build-time bug, not
    /// a per-request reject.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        scheduler
            .validate()
            .unwrap_or_else(|e| panic!("invalid scheduler: {e}"));
        self.scheduler = scheduler;
        self
    }

    /// The output-port scheduling discipline of this network.
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Restricts the transmit buffers available per connection: `host`
    /// at each host's MAC, `device` at the receiving interface device's
    /// MAC. `None` means unbounded. Theorem 1.3 turns a buffer overflow
    /// into an infinite worst-case delay, so the CAC rejects any
    /// allocation whose backlog bound exceeds these.
    ///
    /// # Panics
    ///
    /// Panics if a provided buffer is not strictly positive.
    #[must_use]
    pub fn with_buffers(mut self, host: Option<Bits>, device: Option<Bits>) -> Self {
        for b in [host, device].into_iter().flatten() {
            assert!(b.value() > 0.0, "buffer sizes must be positive");
        }
        self.host_buffer = host;
        self.device_buffer = device;
        self
    }

    /// The per-connection transmit buffer at host MACs, if bounded.
    #[must_use]
    pub fn host_buffer(&self) -> Option<Bits> {
        self.host_buffer
    }

    /// The per-connection buffer at the receiving device's MAC, if
    /// bounded.
    #[must_use]
    pub fn device_buffer(&self) -> Option<Bits> {
        self.device_buffer
    }

    /// The network of the paper's evaluation (§6): three standard FDDI
    /// rings of four hosts each, three interface devices, three ATM
    /// switches joined pairwise by 155 Mb/s links.
    #[must_use]
    pub fn paper_topology() -> Self {
        let link = LinkConfig::oc3(Seconds::from_micros(5.0));
        Self::new(
            vec![RingConfig::standard(); 3],
            4,
            IfDevConfig::typical(),
            Backbone::fully_meshed(3, SwitchConfig::typical(), link),
            link,
        )
        .expect("paper topology is well-formed")
    }

    /// A scaled-out topology: `rings` standard FDDI rings of
    /// `hosts_per_ring` hosts, each attached to its own switch of a
    /// near-square [`Backbone::grid`], with the paper's interface
    /// devices and OC-3 access links. This is the generator big-bench
    /// and shard tests use instead of hand-building configs; ring `i`
    /// attaches to grid switch `i` (row-major), so neighboring ring
    /// indices are usually one backbone hop apart.
    ///
    /// # Panics
    ///
    /// Panics if `rings` or `hosts_per_ring` is zero.
    #[must_use]
    pub fn grid(rings: usize, hosts_per_ring: usize) -> Self {
        assert!(
            rings > 0 && hosts_per_ring > 0,
            "grid needs rings and hosts"
        );
        let link = LinkConfig::oc3(Seconds::from_micros(5.0));
        let cols = (1..).find(|c| c * c >= rings).expect("some square fits");
        let rows = rings.div_ceil(cols);
        Self::new(
            vec![RingConfig::standard(); rings],
            hosts_per_ring,
            IfDevConfig::typical(),
            Backbone::grid(cols, rows, SwitchConfig::typical(), link),
            link,
        )
        .expect("grid topology is well-formed")
    }

    /// Returns a copy of this network with every ring's parameters
    /// replaced. The topology proper — host counts, interface devices,
    /// backbone, routes — is untouched, so the lazily materialized
    /// route cache carries over verbatim: TTRT and overhead changes
    /// alter ring timing, never routing. This is the substrate of live
    /// reconfiguration ([`crate::cac::NetworkState::reconfigure`]).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] if the ring count differs
    /// from this network's or any replacement configuration is invalid.
    pub fn with_ring_configs(&self, rings: Vec<RingConfig>) -> Result<Self, CacError> {
        if rings.len() != self.rings.len() {
            return Err(CacError::InvalidNetwork(format!(
                "{} replacement rings for a {}-ring network",
                rings.len(),
                self.rings.len()
            )));
        }
        for (i, r) in rings.iter().enumerate() {
            r.validate()
                .map_err(|m| CacError::InvalidNetwork(format!("ring {i}: {m}")))?;
        }
        let mut net = self.clone();
        net.rings = rings;
        Ok(net)
    }

    /// Ring configurations.
    #[must_use]
    pub fn rings(&self) -> &[RingConfig] {
        &self.rings
    }

    /// Configuration of one ring.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is out of range.
    #[must_use]
    pub fn ring(&self, ring: impl Into<RingId>) -> &RingConfig {
        &self.rings[ring.into().0]
    }

    /// Hosts per ring.
    #[must_use]
    pub fn hosts_per_ring(&self) -> usize {
        self.hosts_per_ring
    }

    /// Total number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.rings.len() * self.hosts_per_ring
    }

    /// The interface-device configuration.
    #[must_use]
    pub fn ifdev(&self) -> &IfDevConfig {
        &self.ifdev
    }

    /// The backbone.
    #[must_use]
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The access-link configuration.
    #[must_use]
    pub fn access_link(&self) -> &LinkConfig {
        &self.access_link
    }

    /// The backbone switch a ring attaches to.
    #[must_use]
    pub fn switch_of(&self, ring: impl Into<RingId>) -> SwitchId {
        SwitchId(ring.into().0 as u32)
    }

    /// The minimum-hop backbone route from `ring_s`'s switch to
    /// `ring_r`'s switch (empty when they share a switch), materialized
    /// on first use and cached.
    ///
    /// # Errors
    ///
    /// Returns [`CacError`] if either ring index is out of range or the
    /// backbone offers no route between the two switches.
    pub fn route_between(
        &self,
        ring_s: impl Into<RingId>,
        ring_r: impl Into<RingId>,
    ) -> Result<Arc<[LinkId]>, CacError> {
        let (ring_s, ring_r) = (ring_s.into().0, ring_r.into().0);
        let n = self.rings.len();
        if ring_s >= n || ring_r >= n {
            return Err(CacError::InvalidRequest(format!(
                "ring pair ({ring_s}, {ring_r}) out of range for {n} rings"
            )));
        }
        let key = (ring_s as u32, ring_r as u32);
        let cached = self
            .routes
            .0
            .read()
            .expect("route cache poisoned")
            .get(&key)
            .cloned();
        let route = match cached {
            Some(r) => r,
            None => {
                let from = self.switch_of(ring_s);
                let prev = self.backbone.shortest_path_tree(from);
                let route = self
                    .backbone
                    .reconstruct(from, self.switch_of(ring_r), &prev)
                    .map(Arc::from);
                self.routes
                    .0
                    .write()
                    .expect("route cache poisoned")
                    .entry(key)
                    .or_insert(route)
                    .clone()
            }
        };
        route.ok_or_else(|| {
            CacError::from(hetnet_atm::AtmError::NoRoute {
                from: self.switch_of(ring_s),
                to: self.switch_of(ring_r),
            })
        })
    }

    /// The compact shape of this network, for trace labels and reports.
    #[must_use]
    pub fn summary(&self) -> TopologySummary {
        TopologySummary {
            rings: self.rings.len(),
            hosts_per_ring: self.hosts_per_ring,
            switches: self.backbone.switch_count(),
            links: self.backbone.link_count(),
        }
    }

    /// Whether a host id refers to a real host.
    #[must_use]
    pub fn contains(&self, host: HostId) -> bool {
        host.ring < self.rings.len() && host.station < self.hosts_per_ring
    }

    /// Iterates over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.rings.len()).flat_map(move |ring| {
            (0..self.hosts_per_ring).map(move |station| HostId { ring, station })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_shape() {
        let net = HetNetwork::paper_topology();
        assert_eq!(net.rings().len(), 3);
        assert_eq!(net.hosts_per_ring(), 4);
        assert_eq!(net.host_count(), 12);
        assert_eq!(net.backbone().switch_count(), 3);
        assert_eq!(net.backbone().link_count(), 6);
        assert_eq!(net.access_link().rate.as_mbps(), 155.0);
        assert_eq!(net.switch_of(2), SwitchId(2));
        assert_eq!(net.hosts().count(), 12);
        assert!(net.contains(HostId {
            ring: 2,
            station: 3
        }));
        assert!(!net.contains(HostId {
            ring: 3,
            station: 0
        }));
        assert!(!net.contains(HostId {
            ring: 0,
            station: 4
        }));
    }

    #[test]
    fn routes_materialize_lazily() {
        let net = HetNetwork::paper_topology();
        assert!(net.route_between(0, 0).unwrap().is_empty());
        // The paper backbone is fully meshed: one hop between any pair.
        assert_eq!(net.route_between(0, 1).unwrap().len(), 1);
        assert_eq!(net.route_between(2, 0).unwrap().len(), 1);
        assert!(matches!(
            net.route_between(0, 9),
            Err(CacError::InvalidRequest(_))
        ));
    }

    #[test]
    fn grid_generator_scales() {
        let net = HetNetwork::grid(10, 2);
        assert_eq!(net.rings().len(), 10);
        assert_eq!(net.hosts_per_ring(), 2);
        // 10 rings fit a 4x3 grid: 12 switches, row-major attachment.
        assert_eq!(net.backbone().switch_count(), 12);
        assert_eq!(net.switch_of(7), SwitchId(7));
        // Corner rings route at Manhattan distance across the grid.
        assert_eq!(net.route_between(0, 1).unwrap().len(), 1);
        assert_eq!(net.route_between(0, 9).unwrap().len(), 3);
        assert!(net.route_between(3, 3).unwrap().is_empty());
        // A single-ring grid degenerates cleanly.
        let one = HetNetwork::grid(1, 1);
        assert_eq!(one.backbone().switch_count(), 1);
        assert!(one.route_between(0, 0).unwrap().is_empty());
    }

    #[test]
    fn validation_errors() {
        let link = LinkConfig::oc3(Seconds::ZERO);
        let bb = |n| Backbone::fully_meshed(n, SwitchConfig::typical(), link);
        assert!(HetNetwork::new(vec![], 4, IfDevConfig::typical(), bb(3), link).is_err());
        assert!(HetNetwork::new(
            vec![RingConfig::standard()],
            0,
            IfDevConfig::typical(),
            bb(1),
            link
        )
        .is_err());
        // Too few switches.
        assert!(HetNetwork::new(
            vec![RingConfig::standard(); 3],
            4,
            IfDevConfig::typical(),
            bb(2),
            link
        )
        .is_err());
        // Bad ring.
        let mut bad = RingConfig::standard();
        bad.ttrt = Seconds::ZERO;
        assert!(HetNetwork::new(vec![bad], 4, IfDevConfig::typical(), bb(1), link).is_err());
    }

    #[test]
    fn ring_configs_replace_in_place() {
        let net = HetNetwork::paper_topology();
        let mut rings = net.rings().to_vec();
        rings[1].ttrt = Seconds::from_millis(12.0);
        let wide = net.with_ring_configs(rings).unwrap();
        assert_eq!(wide.ring(1).ttrt.as_millis(), 12.0);
        assert_eq!(wide.ring(0).ttrt.as_millis(), 8.0);
        assert_eq!(wide.summary(), net.summary());
        // Routes carried over: same cache contents, same answers.
        assert_eq!(
            wide.route_between(0, 2).unwrap(),
            net.route_between(0, 2).unwrap()
        );
        // Wrong count and invalid replacements are refused.
        assert!(net
            .with_ring_configs(vec![RingConfig::standard(); 2])
            .is_err());
        let mut bad = net.rings().to_vec();
        bad[0].overhead = bad[0].ttrt;
        assert!(net.with_ring_configs(bad).is_err());
    }

    #[test]
    fn buffer_configuration() {
        let net = HetNetwork::paper_topology();
        assert_eq!(net.host_buffer(), None);
        assert_eq!(net.device_buffer(), None);
        let net = net.with_buffers(Some(Bits::from_mbits(1.0)), Some(Bits::from_mbits(2.0)));
        assert_eq!(net.host_buffer(), Some(Bits::from_mbits(1.0)));
        assert_eq!(net.device_buffer(), Some(Bits::from_mbits(2.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buffer_rejected() {
        let _ = HetNetwork::paper_topology().with_buffers(Some(Bits::ZERO), None);
    }

    #[test]
    fn ring_id_converts_and_displays() {
        let net = HetNetwork::paper_topology();
        // Typed and bare indices resolve identically at every boundary.
        assert_eq!(net.switch_of(RingId(1)), net.switch_of(1));
        assert_eq!(net.ring(RingId(2)).ttrt, net.ring(2).ttrt);
        assert_eq!(
            net.route_between(RingId(0), RingId(2)).unwrap(),
            net.route_between(0, 2).unwrap()
        );
        assert_eq!(RingId::from(3).index(), 3);
        assert_eq!(format!("{}", RingId(1)), "ring-1");
        let host = HostId {
            ring: 2,
            station: 0,
        };
        assert_eq!(host.ring_id(), RingId(2));
    }

    #[test]
    fn topology_summary_counts_and_label() {
        let s = HetNetwork::paper_topology().summary();
        assert_eq!(
            s,
            TopologySummary {
                rings: 3,
                hosts_per_ring: 4,
                switches: 3,
                links: 6
            }
        );
        assert_eq!(s.to_string(), "3 rings x 4 hosts, 3 switches, 6 links");
    }

    #[test]
    fn host_display() {
        assert_eq!(
            format!(
                "{}",
                HostId {
                    ring: 1,
                    station: 2
                }
            ),
            "host-1.2"
        );
    }
}
