//! Incremental per-server admission state and the fast decision ladder.
//!
//! The dense evaluator recomputes every multiplexer and both ring MACs
//! from scratch for each β-search probe, so a probe costs
//! `O(active × path length)` even when only the candidate's allocation
//! moved. This module maintains the cross-request state that makes a
//! probe `O(path length)`:
//!
//! * [`IncrementalState`] — per-ring Theorem-1 aggregate terms and
//!   per-multiplexer membership, updated by deltas on every
//!   admit/release/teardown. Equality with a from-scratch rebuild is a
//!   maintained invariant (ring totals are re-summed in connection-id
//!   order on each change, so they are bit-identical to a rebuild, not
//!   merely close).
//! * [`FastContext`] — a per-decision snapshot combining that state
//!   with the dense evaluator's cached stage-1 summaries, through which
//!   each probe runs a five-rung decision ladder:
//!
//!   1. **source-stability reject** — the exact comparison the dense
//!      source-MAC analysis performs, on three floats;
//!   2. **stage-1 reject** — the dense (cached) source-MAC analysis of
//!      the candidate alone;
//!   3. **lower-bound reject** — λ-independent fixed delays plus the
//!      source MAC delay already exceed the deadline;
//!   4. **upper-bound accept** — closed-form affine `(σ, ρ)` envelope
//!      arithmetic ([`hetnet_atm::affine`]) over every multiplexer and
//!      the receive MAC, guarded so it provably dominates the dense
//!      analysis;
//!   5. **fallback** — anything not decided by rungs 1–4 goes to the
//!      dense probe.
//!
//! Only the *boolean* feasible-at-λ probes of the β bisection consult
//! the ladder; every numeric quantity that reaches a decision, a trace,
//! or an allocation table still comes from the dense evaluator, which
//! is how decisions stay bit-identical with the fast path on or off
//! (property-tested in `tests/fast_path.rs`).

use crate::connection::{ActiveConnection, ConnectionId, ConnectionSpec};
use crate::delay::{Evaluator, FastStage1, MuxKey, PathInput};
use crate::error::CacError;
use crate::network::{HetNetwork, HostId};
use hetnet_atm::affine::{fifo_bounds, AffineBound};
use hetnet_atm::cell;
use hetnet_fddi::mac::mac_service;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_obs as obs;
use hetnet_traffic::service::ServiceCurve;
use hetnet_traffic::units::Seconds;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Relative slack applied to every fast-path comparison, covering the
/// floating-point daylight between this module's sums and the dense
/// evaluator's (same terms, different association order — relative
/// error well under `1e-12` for the path lengths involved).
const GUARD: f64 = 1e-9;

/// The dense busy-period search widens its bracket geometrically (by
/// `2.2×` per step), so it may probe intervals up to that factor beyond
/// the true busy period before converging. The affine busy bound must
/// leave that much headroom below the analysis horizon before the fast
/// path may conclude the dense search would have succeeded.
const BUSY_SEARCH_HEADROOM: f64 = 2.3;

/// The reasons rung 4 (or the receive-side closed forms) can decline to
/// decide a probe, in the order the ladder checks them — the index into
/// [`FastPathStats::fallback_causes`]. `"ambiguous"` means every guard
/// passed but the affine bracket straddled the deadline.
pub const FALLBACK_CAUSES: [&str; 7] = [
    "mux-saturated",
    "mux-horizon",
    "mux-window",
    "receive-saturated",
    "receive-horizon",
    "receive-buffer",
    "ambiguous",
];

/// The reasons [`FastContext`] can fail to assemble at all, making the
/// whole decision run densely without consulting the ladder — the index
/// into [`FastPathStats::skip_causes`].
pub const SKIP_CAUSES: [&str; 4] = [
    "stage1-unavailable",
    "stale-active-set",
    "non-feedforward",
    "non-fifo-scheduler",
];

/// Counters for how β-search probes were decided, per decision (and
/// accumulated per service via the metrics layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Probes accepted by the closed-form upper bound (rung 4).
    pub fast_accepts: u64,
    /// Probes rejected by rungs 1–3.
    pub fast_rejects: u64,
    /// Probes the ladder handed to the dense evaluator (rung 5).
    pub fallbacks: u64,
    /// Rung-5 fallbacks by cause, indexed per [`FALLBACK_CAUSES`]
    /// (sums to `fallbacks`).
    pub fallback_causes: [u64; FALLBACK_CAUSES.len()],
    /// Decisions (not probes) that ran densely because no ladder
    /// context could be assembled. These never enter `probes()` or
    /// `hit_rate()` — the denominators differ — which is exactly why a
    /// low service-level hit rate needs this counter to be explainable.
    pub no_context: u64,
    /// `no_context` by cause, indexed per [`SKIP_CAUSES`].
    pub skip_causes: [u64; SKIP_CAUSES.len()],
}

impl FastPathStats {
    /// Total probes that consulted the ladder.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.fast_accepts + self.fast_rejects + self.fallbacks
    }

    /// Fraction of probes decided without the dense evaluator
    /// (`0.0` when no probe consulted the ladder).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let probes = self.probes();
        if probes == 0 {
            0.0
        } else {
            (self.fast_accepts + self.fast_rejects) as f64 / probes as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.fast_accepts += other.fast_accepts;
        self.fast_rejects += other.fast_rejects;
        self.fallbacks += other.fallbacks;
        for (a, b) in self.fallback_causes.iter_mut().zip(&other.fallback_causes) {
            *a += b;
        }
        self.no_context += other.no_context;
        for (a, b) in self.skip_causes.iter_mut().zip(&other.skip_causes) {
            *a += b;
        }
    }

    /// Records a decision that ran without a ladder context.
    pub fn record_skip(&mut self, cause: &'static str) {
        self.no_context += 1;
        if let Some(i) = SKIP_CAUSES.iter().position(|&c| c == cause) {
            self.skip_causes[i] += 1;
        }
    }
}

/// Per-ring Theorem-1 aggregate terms: total synchronous bandwidth held
/// by senders (`Σ H_S`) and receiving interface devices (`Σ H_R`), and
/// the total sustained rate of the sources transmitting on the ring.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct RingTerms {
    /// `Σ H_S` of connections sourced on this ring (seconds/rotation).
    pub(crate) h_s_total: f64,
    /// `Σ H_R` of connections terminating on this ring.
    pub(crate) h_r_total: f64,
    /// `Σ ρ` of source envelopes on this ring (bits/second).
    pub(crate) rho_total: f64,
}

/// What one admitted connection contributes to the incremental state.
#[derive(Clone, Debug, PartialEq)]
struct FlowTerms {
    source_ring: usize,
    dest_ring: usize,
    h_s: f64,
    h_r: f64,
    rho: f64,
    /// The multiplexers the flow traverses, in path order.
    hops: Vec<MuxKey>,
}

/// Membership of one backbone multiplexer: which connection crosses it
/// and at which hop of its path, in connection-id order (admission ids
/// are monotone, so this is also admission order — the canonical order
/// the dense evaluator sums each aggregate in).
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct ServerTerms {
    members: Vec<(ConnectionId, u32)>,
}

impl ServerTerms {
    /// The `(connection, hop index)` members in connection-id order.
    pub(crate) fn members(&self) -> &[(ConnectionId, u32)] {
        &self.members
    }
}

/// Persistent admission state maintained by deltas.
///
/// `PartialEq` compares every term (floats included): ring totals are
/// recomputed from zero in id order on each mutation, so an
/// incrementally maintained state is bit-identical to
/// [`IncrementalState::rebuild`] of the same active set — the invariant
/// the property tests pin down.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct IncrementalState {
    flows: BTreeMap<ConnectionId, FlowTerms>,
    servers: BTreeMap<MuxKey, ServerTerms>,
    rings: Vec<RingTerms>,
}

impl IncrementalState {
    /// Empty state for a network of `ring_count` rings.
    pub(crate) fn new(ring_count: usize) -> Self {
        Self {
            flows: BTreeMap::new(),
            servers: BTreeMap::new(),
            rings: vec![RingTerms::default(); ring_count],
        }
    }

    /// Builds the state of `active` from scratch (the reference the
    /// delta-maintained state must stay equal to).
    pub(crate) fn rebuild(net: &HetNetwork, active: &[ActiveConnection]) -> Result<Self, CacError> {
        let mut state = Self::new(net.rings().len());
        for c in active {
            state.insert(net, c.id, &c.spec, c.h_s, c.h_r)?;
        }
        // One recompute for the whole batch instead of one per flow:
        // `recompute_rings` re-sums from zero over the id-ordered flow
        // map, so its final result depends only on the final map —
        // bitwise identical to recomputing after every insert.
        state.recompute_rings();
        Ok(state)
    }

    /// Records an admitted connection.
    pub(crate) fn admit(
        &mut self,
        net: &HetNetwork,
        id: ConnectionId,
        spec: &ConnectionSpec,
        h_s: SyncBandwidth,
        h_r: SyncBandwidth,
    ) -> Result<(), CacError> {
        self.insert(net, id, spec, h_s, h_r)?;
        self.recompute_rings();
        Ok(())
    }

    /// Inserts a flow's per-server terms without refreshing ring
    /// totals; callers must `recompute_rings` before the state is read.
    fn insert(
        &mut self,
        net: &HetNetwork,
        id: ConnectionId,
        spec: &ConnectionSpec,
        h_s: SyncBandwidth,
        h_r: SyncBandwidth,
    ) -> Result<(), CacError> {
        let hops = hops_for(net, spec.source, spec.dest)?;
        for (hi, key) in hops.iter().enumerate() {
            let server = self.servers.entry(*key).or_default();
            let pos = server.members.partition_point(|&(mid, _)| mid < id);
            server.members.insert(pos, (id, hi as u32));
        }
        self.flows.insert(
            id,
            FlowTerms {
                source_ring: spec.source.ring,
                dest_ring: spec.dest.ring,
                h_s: h_s.per_rotation().value(),
                h_r: h_r.per_rotation().value(),
                rho: spec.envelope.sustained_rate().value(),
                hops,
            },
        );
        Ok(())
    }

    /// Removes a released (or torn-down) connection. Unknown ids are
    /// ignored, so teardown sweeps can release unconditionally.
    pub(crate) fn release(&mut self, id: ConnectionId) {
        let Some(flow) = self.flows.remove(&id) else {
            return;
        };
        for key in &flow.hops {
            let now_empty = match self.servers.get_mut(key) {
                Some(server) => {
                    server.members.retain(|&(mid, _)| mid != id);
                    server.members.is_empty()
                }
                None => false,
            };
            if now_empty {
                self.servers.remove(key);
            }
        }
        self.recompute_rings();
    }

    /// The Theorem-1 aggregate terms of one ring.
    #[cfg(test)]
    pub(crate) fn ring_totals(&self, ring: usize) -> RingTerms {
        self.rings[ring]
    }

    /// Number of tracked connections.
    #[cfg(test)]
    pub(crate) fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Ring totals are *re-summed from zero in connection-id order* on
    /// every mutation rather than adjusted by `+=`/`-=` deltas: float
    /// addition is not associative, and delta adjustment would let the
    /// totals drift away (bitwise) from what a rebuild produces.
    fn recompute_rings(&mut self) {
        for r in &mut self.rings {
            *r = RingTerms::default();
        }
        for f in self.flows.values() {
            self.rings[f.source_ring].h_s_total += f.h_s;
            self.rings[f.source_ring].rho_total += f.rho;
            self.rings[f.dest_ring].h_r_total += f.h_r;
        }
    }
}

/// The multiplexers a `source → dest` path traverses, in path order.
pub(crate) fn hops_for(
    net: &HetNetwork,
    source: HostId,
    dest: HostId,
) -> Result<Vec<MuxKey>, CacError> {
    let route = net.route_between(source.ring, dest.ring)?;
    let mut hops = Vec::with_capacity(route.len() + 2);
    hops.push(MuxKey::Uplink(source.ring));
    hops.extend(route.iter().map(|l| MuxKey::Backbone(l.0)));
    hops.push(MuxKey::Downlink(dest.ring));
    Ok(hops)
}

/// One multiplexer group of a [`FastContext`]: its service rate and the
/// `(path index, hop index)` members crossing it, with the candidate as
/// the last path index.
#[derive(Clone, Debug)]
struct Group {
    rate: f64,
    members: Vec<(u32, u32)>,
}

/// How a ladder probe came out (see [`FastContext::classify`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LadderOutcome {
    /// `Some(feasible)` when a rung was decisive, `None` on fallback.
    pub(crate) decision: Option<bool>,
    /// Which rung decided (or where the ladder gave up).
    pub(crate) rung: &'static str,
    /// Certain lower bound on the candidate's dense total delay, when
    /// stage 1 completed (seconds).
    pub(crate) lower: Option<f64>,
    /// Affine upper bound on the candidate's dense total delay, when
    /// rung 4 completed (seconds).
    pub(crate) upper: Option<f64>,
}

impl LadderOutcome {
    fn reject(rung: &'static str) -> Self {
        Self {
            decision: Some(false),
            rung,
            lower: None,
            upper: None,
        }
    }

    fn fallback(rung: &'static str, lower: f64) -> Self {
        Self {
            decision: None,
            rung,
            lower: Some(lower),
            upper: None,
        }
    }
}

/// Per-decision snapshot driving the fast ladder: the dense evaluator's
/// cached stage-1 summaries of every active connection, the multiplexer
/// membership (actives from [`IncrementalState`], candidate appended),
/// in dependency order, and the candidate's λ-independent fixed delays.
#[derive(Debug)]
pub(crate) struct FastContext<'n> {
    net: &'n HetNetwork,
    /// Stage-1 summaries of the active paths, in path (= id) order.
    flows: Vec<FastStage1>,
    /// All multiplexers touched by actives or candidate, in an order
    /// that resolves each path's hops front to back.
    groups: Vec<Group>,
    /// Path index of the candidate (`flows.len()`).
    cand_pi: usize,
    /// The candidate's λ-independent delay terms: propagation, fixed
    /// interface-device delays, and switch fabric latencies.
    consts: f64,
}

impl<'n> FastContext<'n> {
    /// Assembles the snapshot, or `None` when the fast path cannot be
    /// used for this decision (an active's stage-1 summary is
    /// unavailable or infeasible, the state is out of sync with the
    /// active set, or the mux dependencies are not feedforward) — the
    /// caller then runs every probe densely, which is always correct.
    #[cfg(test)]
    pub(crate) fn new(
        ev: &mut Evaluator<'_>,
        net: &'n HetNetwork,
        state: &IncrementalState,
        active: &[ActiveConnection],
        source: HostId,
        dest: HostId,
    ) -> Result<Option<Self>, CacError> {
        Ok(Self::assemble(ev, net, state, active, source, dest)?.ok())
    }

    /// [`FastContext::new`], but a failed assembly names its cause (one
    /// of [`SKIP_CAUSES`]) so the caller can attribute the dense run.
    pub(crate) fn assemble(
        ev: &mut Evaluator<'_>,
        net: &'n HetNetwork,
        state: &IncrementalState,
        active: &[ActiveConnection],
        source: HostId,
        dest: HostId,
    ) -> Result<Result<Self, &'static str>, CacError> {
        // Every rung of the ladder models the port as a FIFO aggregate
        // served at the full link rate; a weighted per-class scheduler
        // gives classes different (and laxer) bounds, so the only sound
        // move is to run the whole decision densely.
        if !net.scheduler().is_fifo() {
            return Ok(Err("non-fifo-scheduler"));
        }
        let mut flows = Vec::with_capacity(active.len());
        for c in active {
            let p = PathInput {
                source: c.spec.source,
                dest: c.spec.dest,
                envelope: Arc::clone(&c.spec.envelope),
                h_s: c.h_s,
                h_r: c.h_r,
                class: c.spec.class,
            };
            match ev.fast_stage1(&p)? {
                Some(summary) => flows.push(summary),
                None => return Ok(Err("stage1-unavailable")),
            }
        }

        let cand_pi = active.len();
        let mut grouped: BTreeMap<MuxKey, Vec<(u32, u32)>> = BTreeMap::new();
        for (key, server) in &state.servers {
            let mut members = Vec::with_capacity(server.members().len());
            for &(id, hi) in server.members() {
                // Actives are kept in id order, so the position of an id
                // in `active` is its path index.
                match active.binary_search_by_key(&id, |c| c.id) {
                    Ok(pi) => members.push((pi as u32, hi)),
                    Err(_) => return Ok(Err("stale-active-set")),
                }
            }
            grouped.insert(*key, members);
        }
        let cand_hops = hops_for(net, source, dest)?;
        for (hi, key) in cand_hops.iter().enumerate() {
            grouped
                .entry(*key)
                .or_default()
                .push((cand_pi as u32, hi as u32));
        }

        // Order the groups so every path's hops resolve front to back —
        // the same dependency order the dense resolver uses.
        let keys: Vec<MuxKey> = grouped.keys().copied().collect();
        let mut resolved = vec![0u32; cand_pi + 1];
        let mut remaining: Vec<usize> = (0..keys.len()).collect();
        let mut groups = Vec::with_capacity(keys.len());
        while !remaining.is_empty() {
            let mut next = Vec::new();
            let mut progressed = false;
            for gi in remaining {
                let members = &grouped[&keys[gi]];
                if members.iter().all(|&(pi, hi)| hi == resolved[pi as usize]) {
                    for &(pi, _) in members {
                        resolved[pi as usize] += 1;
                    }
                    let rate = match keys[gi] {
                        MuxKey::Uplink(_) | MuxKey::Downlink(_) => net.access_link().rate,
                        MuxKey::Backbone(l) => net.backbone().link(hetnet_atm::LinkId(l)).rate,
                    };
                    groups.push(Group {
                        rate: rate.value(),
                        members: members.clone(),
                    });
                    progressed = true;
                } else {
                    next.push(gi);
                }
            }
            if !progressed {
                return Ok(Err("non-feedforward"));
            }
            remaining = next;
        }

        // λ-independent candidate delay terms, mirroring the dense
        // path-report composition minus the MAC and queueing delays.
        let mut consts = net.ring(source.ring).propagation.value()
            + net.ifdev().sender_fixed_delay().value()
            + net.access_link().propagation.value()
            + net
                .backbone()
                .switch(net.switch_of(source.ring))
                .fabric_latency
                .value();
        for key in &cand_hops[1..] {
            match *key {
                MuxKey::Backbone(l) => {
                    let lid = hetnet_atm::LinkId(l);
                    consts += net.backbone().link(lid).propagation.value()
                        + net
                            .backbone()
                            .switch(net.backbone().link_target(lid))
                            .fabric_latency
                            .value();
                }
                MuxKey::Downlink(_) => consts += net.access_link().propagation.value(),
                MuxKey::Uplink(_) => {}
            }
        }
        consts +=
            net.ifdev().receiver_fixed_delay().value() + net.ring(dest.ring).propagation.value();

        Ok(Ok(Self {
            net,
            flows,
            groups,
            cand_pi,
            consts,
        }))
    }

    /// The stage-1 summary of path `pi` (`cand_pi` → the candidate's).
    fn flow<'s>(&'s self, pi: usize, cand: &'s FastStage1) -> &'s FastStage1 {
        if pi == self.cand_pi {
            cand
        } else {
            &self.flows[pi]
        }
    }

    /// Runs the decision ladder on one β-search probe.
    ///
    /// A `Some(feasible)` decision is sound to substitute for the dense
    /// probe's boolean: rungs 1–2 replicate the dense computation
    /// exactly, rung 3 compares a certain lower bound, and rung 4's
    /// guards ensure its affine arithmetic dominates every dense bound
    /// the probe would have computed (see the module docs).
    pub(crate) fn classify(
        &self,
        ev: &mut Evaluator<'_>,
        cand: &PathInput,
        deadline: Seconds,
    ) -> Result<LadderOutcome, CacError> {
        let margin = ev.config().analysis.stability_margin;
        let horizon = ev.config().analysis.max_horizon.value();

        // Rung 1: the dense source-MAC analysis starts by rejecting
        // allocations whose service rate cannot keep up with the
        // source's sustained rate; replicate that exact comparison
        // before paying for anything else.
        if cand.h_s.per_rotation().value() <= 0.0 {
            return Ok(LadderOutcome::reject("source-unstable"));
        }
        let ring_s = self.net.ring(cand.source.ring);
        let rho = cand.envelope.sustained_rate().value();
        let srv = mac_service(ring_s, cand.h_s).sustained_rate().value();
        if rho >= srv * (1.0 - margin) {
            return Ok(LadderOutcome::reject("source-unstable"));
        }

        // Rung 2: the dense (cached) stage-1 analysis of the candidate.
        let Some(s1) = ev.fast_stage1(cand)? else {
            return Ok(LadderOutcome::reject("stage1-infeasible"));
        };
        if cand.h_r.per_rotation().value() <= 0.0 {
            return Ok(LadderOutcome::reject("zero-receive-allocation"));
        }

        // Rung 3: the dense total is at least the source MAC delay plus
        // the λ-independent fixed terms.
        let lower = s1.chi_s.value() + self.consts;
        if lower * (1.0 - GUARD) > deadline.value() {
            return Ok(LadderOutcome {
                decision: Some(false),
                rung: "lower-bound",
                lower: Some(lower),
                upper: None,
            });
        }

        // Rung 4: affine upper bound. `shift[pi]` accumulates the delay
        // bounds of path `pi`'s already-processed hops — the envelope a
        // flow presents downstream is its wire envelope delayed by that
        // much, which dominates the dense chained envelope as long as
        // every query stays inside the flattening window.
        let mut shift = vec![0.0_f64; self.flows.len() + 1];
        for group in &self.groups {
            let mut agg = AffineBound::ZERO;
            for &(pi, _) in &group.members {
                let flow = self.flow(pi as usize, &s1);
                agg = agg.plus(&flow.wire_affine.delayed(Seconds::new(shift[pi as usize])));
            }
            // Continuing past this guard certifies the dense aggregate
            // (whose rate never exceeds `agg.rho`, modulo summation
            // ulps) is stable too.
            if agg.rho >= group.rate * (1.0 - margin) * (1.0 - GUARD) {
                return Ok(LadderOutcome::fallback("mux-saturated", lower));
            }
            let Some(fb) = fifo_bounds(&agg, hetnet_traffic::units::BitsPerSec::new(group.rate))
            else {
                return Ok(LadderOutcome::fallback("mux-saturated", lower));
            };
            if fb.busy * BUSY_SEARCH_HEADROOM > horizon {
                return Ok(LadderOutcome::fallback("mux-horizon", lower));
            }
            for &(pi, _) in &group.members {
                if fb.busy + shift[pi as usize] > self.flow(pi as usize, &s1).window {
                    return Ok(LadderOutcome::fallback("mux-window", lower));
                }
            }
            for &(pi, _) in &group.members {
                shift[pi as usize] += fb.delay;
            }
        }

        // Receive side of the candidate: reassembly is exactly affine,
        // and the timed-token MAC of the destination ring admits closed
        // forms for an affine arrival `σ + ρt` served by quantum `q`
        // per rotation `T` (latency two rotations):
        //   delay ≤ 2T + σT/q,  backlog ≤ σ + 2q,
        //   busy ≤ (σ + 2q)/(q/T − ρ).
        let arrived = s1.wire_affine.delayed(Seconds::new(shift[self.cand_pi]));
        let cells = cell::cells_for_payload(s1.frame_size) as f64;
        let scale = s1.frame_size.value() / (cells * cell::CELL_BITS);
        let rea = arrived.scaled_padded(scale, s1.frame_size);
        let ring_r = self.net.ring(cand.dest.ring);
        let t_r = ring_r.ttrt.value();
        let q = cand.h_r.quantum(ring_r.bandwidth).value();
        let srv_r = q / t_r;
        if rea.rho >= srv_r * (1.0 - margin) * (1.0 - GUARD) {
            return Ok(LadderOutcome::fallback("receive-saturated", lower));
        }
        let busy_r = (rea.sigma + 2.0 * q) / (srv_r - rea.rho);
        if busy_r * BUSY_SEARCH_HEADROOM > horizon || busy_r + shift[self.cand_pi] > s1.window {
            return Ok(LadderOutcome::fallback("receive-horizon", lower));
        }
        if let Some(buffer) = self.net.device_buffer() {
            if rea.sigma + 2.0 * q > buffer.value() {
                return Ok(LadderOutcome::fallback("receive-buffer", lower));
            }
        }
        let chi_r = 2.0 * t_r + rea.sigma * t_r / q;

        let upper = s1.chi_s.value() + self.consts + shift[self.cand_pi] + chi_r;
        if upper * (1.0 + GUARD) <= deadline.value() {
            return Ok(LadderOutcome {
                decision: Some(true),
                rung: "upper-bound",
                lower: Some(lower),
                upper: Some(upper),
            });
        }
        Ok(LadderOutcome {
            decision: None,
            rung: "ambiguous",
            lower: Some(lower),
            upper: Some(upper),
        })
    }

    /// [`FastContext::classify`] plus bookkeeping: bumps `stats` and
    /// emits a `fast_path` observability event naming the deciding rung.
    pub(crate) fn probe(
        &self,
        ev: &mut Evaluator<'_>,
        cand: &PathInput,
        deadline: Seconds,
        stats: &mut FastPathStats,
    ) -> Result<Option<bool>, CacError> {
        let out = self.classify(ev, cand, deadline)?;
        let label = match out.decision {
            Some(true) => {
                stats.fast_accepts += 1;
                "accept"
            }
            Some(false) => {
                stats.fast_rejects += 1;
                "reject"
            }
            None => {
                stats.fallbacks += 1;
                if let Some(i) = FALLBACK_CAUSES.iter().position(|&c| c == out.rung) {
                    stats.fallback_causes[i] += 1;
                }
                "fallback"
            }
        };
        obs::event(
            "fast_path",
            &[
                ("rung", obs::FieldValue::Str(out.rung)),
                ("decision", obs::FieldValue::Str(label)),
                // Non-finite exports as JSON null (bound not computed).
                (
                    "lower_s",
                    obs::FieldValue::F64(out.lower.unwrap_or(f64::NAN)),
                ),
                (
                    "upper_s",
                    obs::FieldValue::F64(out.upper.unwrap_or(f64::NAN)),
                ),
            ],
        );
        Ok(out.decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{CandidateOutcome, EvalConfig};
    use hetnet_fddi::frames;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};
    use proptest::prelude::*;

    fn env(c1_mbit: f64) -> crate::connection::ConnectionSpec {
        ConnectionSpec {
            source: HostId {
                ring: 0,
                station: 0,
            },
            dest: HostId {
                ring: 1,
                station: 0,
            },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(c1_mbit),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(c1_mbit / 8.0),
                    Seconds::from_millis(12.5),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(100.0),
            class: 0,
        }
    }

    fn spec_between(c1_mbit: f64, src: usize, dst: usize) -> ConnectionSpec {
        let mut s = env(c1_mbit);
        s.source = HostId {
            ring: src,
            station: 0,
        };
        s.dest = HostId {
            ring: dst,
            station: 0,
        };
        s
    }

    #[test]
    fn stats_merge_and_hit_rate() {
        let mut a = FastPathStats {
            fast_accepts: 3,
            fast_rejects: 1,
            ..FastPathStats::default()
        };
        let mut b = FastPathStats {
            fallbacks: 4,
            ..FastPathStats::default()
        };
        b.fallback_causes[0] = 3;
        b.fallback_causes[6] = 1;
        b.record_skip("non-feedforward");
        b.record_skip("not-a-real-cause");
        a.merge(&b);
        assert_eq!(a.probes(), 8);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(a.fallback_causes.iter().sum::<u64>(), a.fallbacks);
        assert_eq!(a.no_context, 2);
        assert_eq!(a.skip_causes, [0, 0, 1, 0]);
        assert_eq!(FastPathStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn ladder_decides_easy_cases() {
        let net = HetNetwork::paper_topology();
        let state = IncrementalState::new(net.rings().len());
        let mut ev = Evaluator::new(&net, EvalConfig::fast());
        let ctx = FastContext::new(
            &mut ev,
            &net,
            &state,
            &[],
            HostId {
                ring: 0,
                station: 0,
            },
            HostId {
                ring: 1,
                station: 0,
            },
        )
        .unwrap()
        .expect("empty state always builds a context");
        let h = SyncBandwidth::new(Seconds::from_millis(7.2));
        let cand = PathInput {
            source: HostId {
                ring: 0,
                station: 0,
            },
            dest: HostId {
                ring: 1,
                station: 0,
            },
            envelope: Arc::clone(&env(1.0).envelope),
            h_s: h,
            h_r: h,
            class: 0,
        };
        // A microsecond deadline dies on the λ-independent fixed terms.
        let out = ctx
            .classify(&mut ev, &cand, Seconds::from_micros(1.0))
            .unwrap();
        assert_eq!(out.decision, Some(false));
        assert_eq!(out.rung, "lower-bound");
        // A half-second deadline is accepted by the affine upper bound.
        let out = ctx
            .classify(&mut ev, &cand, Seconds::from_millis(500.0))
            .unwrap();
        assert_eq!(out.decision, Some(true), "rung {}", out.rung);
        // Zero allocation is the dense stage-1 stability reject.
        let zero = PathInput {
            h_s: SyncBandwidth::new(Seconds::ZERO),
            ..cand.clone()
        };
        let out = ctx
            .classify(&mut ev, &zero, Seconds::from_millis(500.0))
            .unwrap();
        assert_eq!(out.decision, Some(false));
        assert_eq!(out.rung, "source-unstable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Delta maintenance must stay bit-identical to a from-scratch
        /// rebuild across arbitrary admit/release interleavings.
        #[test]
        fn incremental_state_matches_rebuild(
            ops in proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 1..40),
        ) {
            let net = HetNetwork::paper_topology();
            let mut state = IncrementalState::new(net.rings().len());
            let mut active: Vec<ActiveConnection> = Vec::new();
            let mut next_id = 0u64;
            for (op, a, b) in ops {
                if op < 2 || active.is_empty() {
                    let (src, dst) = if a == b { (a, (a + 1) % 3) } else { (a, b) };
                    let id = ConnectionId(next_id);
                    next_id += 1;
                    let spec = spec_between(0.5 + a as f64, src, dst);
                    let h = SyncBandwidth::new(Seconds::from_millis(0.5 + b as f64));
                    state.admit(&net, id, &spec, h, h).unwrap();
                    active.push(ActiveConnection {
                        id,
                        spec,
                        h_s: h,
                        h_r: h,
                        delay_bound: Seconds::ZERO,
                    });
                } else {
                    let victim = active.remove((a * 7 + b) % active.len());
                    state.release(victim.id);
                }
                let rebuilt = IncrementalState::rebuild(&net, &active).unwrap();
                prop_assert!(state == rebuilt, "diverged after {} ops", active.len());
                let totals = state.ring_totals(0);
                prop_assert!(totals.h_s_total >= 0.0 && totals.rho_total >= 0.0);
                prop_assert_eq!(state.flow_count(), active.len());
            }
            for c in &active {
                state.release(c.id);
            }
            prop_assert!(state == IncrementalState::new(net.rings().len()));
        }

        /// Every decisive ladder answer must agree with the dense probe,
        /// and the bounds must bracket the dense total.
        #[test]
        fn ladder_is_sound_against_the_dense_evaluator(
            c1 in 0.4f64..2.0,
            deadline_ms in 2.0f64..120.0,
            lambda in 0.0f64..1.0,
            n_active in 0usize..3,
        ) {
            let net = HetNetwork::paper_topology();
            let mut active = Vec::new();
            for i in 0..n_active {
                let spec = spec_between(0.5, i % 3, (i + 1) % 3);
                let h = SyncBandwidth::new(Seconds::from_millis(2.0));
                active.push(ActiveConnection {
                    id: ConnectionId(i as u64),
                    spec,
                    h_s: h,
                    h_r: h,
                    delay_bound: Seconds::ZERO,
                });
            }
            let state = IncrementalState::rebuild(&net, &active).unwrap();
            let mut ev = Evaluator::new(&net, EvalConfig::fast());
            let src = HostId { ring: 0, station: 1 };
            let dst = HostId { ring: 2, station: 1 };
            let Some(ctx) =
                FastContext::new(&mut ev, &net, &state, &active, src, dst).unwrap()
            else {
                return;
            };
            let ring = net.ring(0);
            let min_h = frames::min_allocation(ring, 0.9);
            let max_h = SyncBandwidth::new(Seconds::from_millis(7.2));
            let h = min_h.lerp(max_h, lambda);
            let mut spec = spec_between(c1, src.ring, dst.ring);
            spec.deadline = Seconds::from_millis(deadline_ms);
            let cand = PathInput {
                source: src,
                dest: dst,
                envelope: Arc::clone(&spec.envelope),
                h_s: h,
                h_r: h,
                class: 0,
            };
            let out = ctx.classify(&mut ev, &cand, spec.deadline).unwrap();

            // Dense reference: actives plus candidate, candidate last.
            let mut inputs: Vec<PathInput> = active
                .iter()
                .map(|c| PathInput {
                    source: c.spec.source,
                    dest: c.spec.dest,
                    envelope: Arc::clone(&c.spec.envelope),
                    h_s: c.h_s,
                    h_r: c.h_r,
                    class: c.spec.class,
                })
                .collect();
            inputs.push(cand);
            let dense = ev.evaluate_candidate(&inputs).unwrap();
            let dense_total = match &dense {
                CandidateOutcome::Feasible { candidate, .. } => Some(candidate.total.value()),
                CandidateOutcome::Infeasible(_) => None,
            };
            let dense_ok =
                dense_total.is_some_and(|t| t <= spec.deadline.value());
            if let Some(decided) = out.decision {
                prop_assert_eq!(
                    decided, dense_ok,
                    "rung {} disagrees with dense (total {:?})",
                    out.rung, dense_total
                );
            }
            if let (Some(total), Some(lower)) = (dense_total, out.lower) {
                prop_assert!(
                    lower * (1.0 - 10.0 * GUARD) <= total,
                    "lower {lower} above dense total {total}"
                );
            }
            if let (Some(total), Some(upper)) = (dense_total, out.upper) {
                prop_assert!(
                    upper * (1.0 + 10.0 * GUARD) >= total,
                    "upper {upper} below dense total {total}"
                );
            }
        }
    }
}
