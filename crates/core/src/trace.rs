//! Structured decision traces: every [`crate::cac::NetworkState::admit`]
//! call produces a [`DecisionTrace`] explaining *why* the verdict came
//! out the way it did — the eq.-7 delay decomposition and deadline
//! slack of every connection the decision touched, and, on reject, the
//! [`BindingConstraint`] that exhausted the budget.
//!
//! The trace is the observability counterpart of [`crate::cac::Decision`]:
//! the decision says *what*, the trace says *why*, in terms an operator
//! can act on ("connection-3's ATM term ate the budget", "ring 0 is out
//! of synchronous bandwidth").

use crate::connection::ConnectionId;
use crate::delay::{CacheStats, PathReport};
use crate::incremental::FastPathStats;
use crate::network::{Component, RingId};
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_obs::export::push_json_str;
use hetnet_traffic::units::Seconds;
use std::fmt;
use std::fmt::Write as _;

/// One server term of the paper's eq.-7 decomposition
/// `d^wc = d^wc_FDDI_S + d^wc_ID_S + d^wc_ATM + d^wc_ID_R + d^wc_FDDI_R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServerStage {
    /// Source-ring MAC delay plus ring propagation.
    FddiS,
    /// Sender-side interface device.
    IdS,
    /// ATM backbone.
    Atm,
    /// Receiver-side interface device.
    IdR,
    /// Destination-ring MAC delay plus ring propagation.
    FddiR,
}

impl ServerStage {
    /// All five stages in path order.
    pub const ALL: [Self; 5] = [Self::FddiS, Self::IdS, Self::Atm, Self::IdR, Self::FddiR];

    /// Stable lowercase name matching the [`PathReport`] field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::FddiS => "fddi_s",
            Self::IdS => "id_s",
            Self::Atm => "atm",
            Self::IdR => "id_r",
            Self::FddiR => "fddi_r",
        }
    }

    /// This stage's term of a report.
    #[must_use]
    pub fn of(self, report: &PathReport) -> Seconds {
        match self {
            Self::FddiS => report.fddi_s,
            Self::IdS => report.id_s,
            Self::Atm => report.atm,
            Self::IdR => report.id_r,
            Self::FddiR => report.fddi_r,
        }
    }

    /// The stage contributing the largest term (first in path order on
    /// ties) — the natural "where did the budget go" attribution.
    #[must_use]
    pub fn dominant(report: &PathReport) -> Self {
        let mut best = Self::FddiS;
        for stage in Self::ALL {
            if stage.of(report) > best.of(report) {
                best = stage;
            }
        }
        best
    }
}

impl fmt::Display for ServerStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One connection's worth of a [`DecisionTrace`]: its eq.-7
/// decomposition at the evaluated allocation, its deadline, and the
/// slack left under it.
#[derive(Clone, Debug)]
pub struct ConnectionTrace {
    /// The connection's id; `None` for a candidate that was not
    /// admitted (it never received one).
    pub id: Option<ConnectionId>,
    /// The eq.-7 delay decomposition.
    pub report: PathReport,
    /// The connection's deadline.
    pub deadline: Seconds,
    /// `deadline − total` (negative when the deadline is missed).
    pub slack: Seconds,
    /// The largest of the five stage terms.
    pub dominant: ServerStage,
}

impl ConnectionTrace {
    /// Builds a trace entry from a report and deadline.
    #[must_use]
    pub fn new(id: Option<ConnectionId>, report: PathReport, deadline: Seconds) -> Self {
        Self {
            id,
            report,
            deadline,
            slack: deadline - report.total,
            dominant: ServerStage::dominant(&report),
        }
    }
}

/// The constraint that decided a rejection — a refinement of
/// [`crate::cac::RejectReason`] that names the responsible connection
/// and server term where one exists.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BindingConstraint {
    /// The source ring's synchronous budget cannot cover the request.
    SourceBandwidth {
        /// The exhausted ring.
        ring: RingId,
        /// Synchronous time still available there.
        available: Seconds,
        /// What the request needed at minimum.
        required: Seconds,
    },
    /// The destination ring's synchronous budget cannot cover the
    /// request.
    DestBandwidth {
        /// The exhausted ring.
        ring: RingId,
        /// Synchronous time still available there.
        available: Seconds,
        /// What the request needed at minimum.
        required: Seconds,
    },
    /// A deadline is missed even at the maximum available allocation:
    /// the named connection's delay exceeds its deadline, and `stage`
    /// is the dominant term of its decomposition.
    DeadlineExceeded {
        /// The violated connection (`None` when it is the requesting
        /// candidate, which has no id yet).
        connection: Option<ConnectionId>,
        /// The dominant server term of the violated path.
        stage: ServerStage,
        /// The violated path's end-to-end bound.
        delay: Seconds,
        /// Its deadline.
        deadline: Seconds,
        /// `delay − deadline` (positive).
        excess: Seconds,
    },
    /// Some server is unstable (or the numerical verification failed)
    /// at the evaluated allocations — no finite bound exists.
    ServerUnstable {
        /// Which server, verbatim from the evaluator.
        detail: String,
    },
    /// A component on the request's path is marked down (fault
    /// injection / operational failure): no allocation can help until
    /// it is restored.
    ComponentDown {
        /// The failed component.
        component: Component,
    },
}

impl BindingConstraint {
    /// Stable kind tag used by exporters and metrics
    /// (`"source_bandwidth"`, `"dest_bandwidth"`, `"deadline"`,
    /// `"unstable"`, `"component_down"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::SourceBandwidth { .. } => "source_bandwidth",
            Self::DestBandwidth { .. } => "dest_bandwidth",
            Self::DeadlineExceeded { .. } => "deadline",
            Self::ServerUnstable { .. } => "unstable",
            Self::ComponentDown { .. } => "component_down",
        }
    }
}

impl fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SourceBandwidth {
                ring,
                available,
                required,
            } => write!(
                f,
                "source {ring} out of synchronous bandwidth ({available} available, {required} required)"
            ),
            Self::DestBandwidth {
                ring,
                available,
                required,
            } => write!(
                f,
                "destination {ring} out of synchronous bandwidth ({available} available, {required} required)"
            ),
            Self::DeadlineExceeded {
                connection,
                stage,
                delay,
                deadline,
                excess,
            } => {
                match connection {
                    Some(id) => write!(f, "{id}")?,
                    None => f.write_str("the requesting connection")?,
                }
                write!(
                    f,
                    " misses its deadline ({delay} > {deadline}, excess {excess}); dominant term {stage}"
                )
            }
            Self::ServerUnstable { detail } => write!(f, "server unstable: {detail}"),
            Self::ComponentDown { component } => {
                write!(f, "component {component} is down on the request's path")
            }
        }
    }
}

/// The full explanation of one admission decision.
#[derive(Clone, Debug)]
pub struct DecisionTrace {
    /// Decision sequence number (matches
    /// [`crate::cac::DecisionRecord::seq`]).
    pub seq: u64,
    /// The state's logical clock at decision time.
    pub at: Seconds,
    /// The verdict.
    pub admitted: bool,
    /// Display form of the backbone scheduler the decision was analyzed
    /// under (`"fifo"`, `"iwrr[..]"`, `"drr[..]"`) — bounds from
    /// different disciplines are not comparable, so every trace names
    /// its discipline.
    pub scheduler: String,
    /// The `(H_S, H_R)` pair the verdict was reached at — the committed
    /// allocation on admit, `None` when the reject happened before any
    /// allocation was evaluated (bandwidth pre-checks).
    pub allocation: Option<(SyncBandwidth, SyncBandwidth)>,
    /// Per-connection decompositions at the decided allocation:
    /// existing connections in admission order, the candidate last.
    /// Empty when the reject happened before any path was evaluated.
    pub connections: Vec<ConnectionTrace>,
    /// What decided a rejection; `None` on admit.
    pub binding: Option<BindingConstraint>,
    /// Evaluator cache counters of the decision's searches (all-zero
    /// for fixed-allocation decisions, which run uncached).
    pub cache: CacheStats,
    /// How the decision's β-search probes were resolved by the fast
    /// decision ladder (all-zero when the fast path is disabled or for
    /// fixed-allocation decisions, which never probe).
    pub fast_path: FastPathStats,
}

impl DecisionTrace {
    /// The requesting connection's entry (the last one), if any path
    /// was evaluated.
    #[must_use]
    pub fn candidate(&self) -> Option<&ConnectionTrace> {
        self.connections.last()
    }

    /// One-line JSON rendering, shaped like the `hetnet-obs` JSON-lines
    /// stream so the two can be interleaved in one log:
    ///
    /// ```text
    /// {"seq":4,"at_s":12.5,"admitted":false,"scheduler":"fifo","allocation":null,
    ///  "binding":{"kind":"deadline","connection":2,"stage":"atm",...},
    ///  "cache":{...},"connections":[{"id":2,"fddi_s_s":...,...},...]}
    /// ```
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256 + self.connections.len() * 224);
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_s\":{},\"admitted\":{},\"scheduler\":\"{}\",",
            self.seq,
            json_f64(self.at.value()),
            self.admitted,
            self.scheduler
        );
        match self.allocation {
            Some((h_s, h_r)) => {
                let _ = write!(
                    out,
                    "\"allocation\":{{\"h_s_s\":{},\"h_r_s\":{}}},",
                    json_f64(h_s.per_rotation().value()),
                    json_f64(h_r.per_rotation().value())
                );
            }
            None => out.push_str("\"allocation\":null,"),
        }
        out.push_str("\"binding\":");
        match &self.binding {
            None => out.push_str("null"),
            Some(b) => push_binding_json(&mut out, b),
        }
        let _ = write!(
            out,
            concat!(
                ",\"cache\":{{\"stage1_hits\":{},\"stage1_misses\":{},",
                "\"mux_hits\":{},\"mux_misses\":{},",
                "\"receive_hits\":{},\"receive_misses\":{}}}"
            ),
            self.cache.stage1_hits,
            self.cache.stage1_misses,
            self.cache.mux_hits,
            self.cache.mux_misses,
            self.cache.receive_hits,
            self.cache.receive_misses
        );
        let _ = write!(
            out,
            ",\"fast_path\":{{\"fast_accepts\":{},\"fast_rejects\":{},\"fallbacks\":{}}}",
            self.fast_path.fast_accepts, self.fast_path.fast_rejects, self.fast_path.fallbacks
        );
        out.push_str(",\"connections\":[");
        for (i, c) in self.connections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_connection_json(&mut out, c);
        }
        out.push_str("]}");
        out
    }
}

/// Formats a float as a JSON value (`null` when non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn push_connection_json(out: &mut String, c: &ConnectionTrace) {
    match c.id {
        Some(id) => {
            let _ = write!(out, "{{\"id\":{},", id.0);
        }
        None => out.push_str("{\"id\":null,"),
    }
    for stage in ServerStage::ALL {
        let _ = write!(
            out,
            "\"{}_s\":{},",
            stage.name(),
            json_f64(stage.of(&c.report).value())
        );
    }
    let _ = write!(
        out,
        concat!(
            "\"total_s\":{},\"deadline_s\":{},\"slack_s\":{},\"dominant\":\"{}\",",
            "\"buffer_mac_s_bits\":{},\"buffer_mac_r_bits\":{}}}"
        ),
        json_f64(c.report.total.value()),
        json_f64(c.deadline.value()),
        json_f64(c.slack.value()),
        c.dominant.name(),
        json_f64(c.report.buffer_mac_s.value()),
        json_f64(c.report.buffer_mac_r.value()),
    );
}

fn push_binding_json(out: &mut String, b: &BindingConstraint) {
    let _ = write!(out, "{{\"kind\":\"{}\",", b.kind());
    match b {
        BindingConstraint::SourceBandwidth {
            ring,
            available,
            required,
        }
        | BindingConstraint::DestBandwidth {
            ring,
            available,
            required,
        } => {
            let _ = write!(
                out,
                "\"ring\":{},\"available_s\":{},\"required_s\":{}}}",
                ring.0,
                json_f64(available.value()),
                json_f64(required.value())
            );
        }
        BindingConstraint::DeadlineExceeded {
            connection,
            stage,
            delay,
            deadline,
            excess,
        } => {
            match connection {
                Some(id) => {
                    let _ = write!(out, "\"connection\":{},", id.0);
                }
                None => out.push_str("\"connection\":null,"),
            }
            let _ = write!(
                out,
                "\"stage\":\"{}\",\"delay_s\":{},\"deadline_s\":{},\"excess_s\":{}}}",
                stage.name(),
                json_f64(delay.value()),
                json_f64(deadline.value()),
                json_f64(excess.value())
            );
        }
        BindingConstraint::ServerUnstable { detail } => {
            out.push_str("\"detail\":");
            push_json_str(out, detail);
            out.push('}');
        }
        BindingConstraint::ComponentDown { component } => {
            let _ = write!(
                out,
                "\"component\":\"{}\",\"component_kind\":\"{}\",\"component_index\":{}}}",
                component,
                component.kind(),
                component.index()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(terms: [f64; 5]) -> PathReport {
        use hetnet_traffic::units::Bits;
        let [fddi_s, id_s, atm, id_r, fddi_r] = terms.map(Seconds::new);
        PathReport {
            fddi_s,
            id_s,
            atm,
            id_r,
            fddi_r,
            total: fddi_s + id_s + atm + id_r + fddi_r,
            buffer_mac_s: Bits::new(1000.0),
            buffer_mac_r: Bits::new(2000.0),
        }
    }

    #[test]
    fn dominant_picks_the_largest_term_first_on_ties() {
        let r = report([0.01, 0.002, 0.03, 0.002, 0.01]);
        assert_eq!(ServerStage::dominant(&r), ServerStage::Atm);
        let tie = report([0.01, 0.01, 0.01, 0.01, 0.01]);
        assert_eq!(ServerStage::dominant(&tie), ServerStage::FddiS);
        for stage in ServerStage::ALL {
            assert_eq!(stage.of(&r), stage.of(&r));
            assert!(!stage.name().is_empty());
        }
    }

    #[test]
    fn connection_trace_computes_slack() {
        let c = ConnectionTrace::new(
            Some(ConnectionId(3)),
            report([0.01, 0.002, 0.03, 0.002, 0.01]),
            Seconds::from_millis(60.0),
        );
        assert!((c.slack.value() - (0.06 - c.report.total.value())).abs() < 1e-15);
        assert_eq!(c.dominant, ServerStage::Atm);
    }

    #[test]
    fn binding_kinds_and_display() {
        let cases = [
            (
                BindingConstraint::SourceBandwidth {
                    ring: RingId(0),
                    available: Seconds::from_millis(1.0),
                    required: Seconds::from_millis(2.0),
                },
                "source_bandwidth",
            ),
            (
                BindingConstraint::DestBandwidth {
                    ring: RingId(1),
                    available: Seconds::from_millis(1.0),
                    required: Seconds::from_millis(2.0),
                },
                "dest_bandwidth",
            ),
            (
                BindingConstraint::DeadlineExceeded {
                    connection: Some(ConnectionId(7)),
                    stage: ServerStage::Atm,
                    delay: Seconds::from_millis(90.0),
                    deadline: Seconds::from_millis(80.0),
                    excess: Seconds::from_millis(10.0),
                },
                "deadline",
            ),
            (
                BindingConstraint::ServerUnstable {
                    detail: "uplink 2".into(),
                },
                "unstable",
            ),
            (
                BindingConstraint::ComponentDown {
                    component: Component::Ring(RingId(1)),
                },
                "component_down",
            ),
        ];
        for (b, kind) in cases {
            assert_eq!(b.kind(), kind);
            assert!(!b.to_string().is_empty());
        }
    }

    #[test]
    fn json_line_shape() {
        let trace = DecisionTrace {
            seq: 4,
            at: Seconds::new(12.5),
            admitted: false,
            scheduler: "fifo".into(),
            allocation: Some((
                SyncBandwidth::new(Seconds::from_millis(2.0)),
                SyncBandwidth::new(Seconds::from_millis(2.5)),
            )),
            connections: vec![
                ConnectionTrace::new(
                    Some(ConnectionId(2)),
                    report([0.01, 0.002, 0.03, 0.002, 0.01]),
                    Seconds::from_millis(40.0),
                ),
                ConnectionTrace::new(
                    None,
                    report([0.02, 0.002, 0.05, 0.002, 0.02]),
                    Seconds::from_millis(60.0),
                ),
            ],
            binding: Some(BindingConstraint::DeadlineExceeded {
                connection: None,
                stage: ServerStage::Atm,
                delay: Seconds::from_millis(94.0),
                deadline: Seconds::from_millis(60.0),
                excess: Seconds::from_millis(34.0),
            }),
            cache: CacheStats {
                stage1_hits: 5,
                stage1_misses: 1,
                mux_hits: 10,
                mux_misses: 2,
                receive_hits: 3,
                receive_misses: 1,
                ..CacheStats::default()
            },
            fast_path: FastPathStats {
                fast_accepts: 6,
                fast_rejects: 2,
                fallbacks: 1,
                ..FastPathStats::default()
            },
        };
        let line = trace.to_json_line();
        assert!(
            line.starts_with("{\"seq\":4,\"at_s\":12.5,\"admitted\":false,\"scheduler\":\"fifo\",")
        );
        assert!(line.contains("\"allocation\":{\"h_s_s\":0.002,\"h_r_s\":0.0025}"));
        assert!(line
            .contains("\"binding\":{\"kind\":\"deadline\",\"connection\":null,\"stage\":\"atm\""));
        assert!(line.contains(
            "\"cache\":{\"stage1_hits\":5,\"stage1_misses\":1,\"mux_hits\":10,\"mux_misses\":2,\
             \"receive_hits\":3,\"receive_misses\":1}"
        ));
        assert!(
            line.contains("\"fast_path\":{\"fast_accepts\":6,\"fast_rejects\":2,\"fallbacks\":1}")
        );
        assert!(line.contains("\"id\":2,"));
        assert!(line.contains("\"id\":null,"));
        assert!(line.contains("\"dominant\":\"atm\""));
        assert!(line.ends_with("]}"));
        assert!(!line.contains('\n'));
        assert_eq!(trace.candidate().unwrap().id, None);
    }

    #[test]
    fn component_down_binding_json() {
        use hetnet_atm::topology::LinkId;
        let b = BindingConstraint::ComponentDown {
            component: Component::Link(LinkId(4)),
        };
        let mut out = String::new();
        push_binding_json(&mut out, &b);
        assert_eq!(
            out,
            "{\"kind\":\"component_down\",\"component\":\"link-4\",\
             \"component_kind\":\"link\",\"component_index\":4}"
        );
    }

    #[test]
    fn unstable_binding_escapes_detail() {
        let b = BindingConstraint::ServerUnstable {
            detail: "a \"quoted\" reason".into(),
        };
        let mut out = String::new();
        push_binding_json(&mut out, &b);
        assert_eq!(
            out,
            "{\"kind\":\"unstable\",\"detail\":\"a \\\"quoted\\\" reason\"}"
        );
    }
}
