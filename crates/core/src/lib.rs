//! Connection admission control for FDDI-ATM-FDDI heterogeneous
//! networks — the primary contribution of Chen, Sahoo, Zhao and Raha,
//! *"Connection-Oriented Communications for Real-Time Applications in
//! FDDI-ATM-FDDI Heterogeneous Networks"* (ICDCS 1997).
//!
//! A real-time connection crosses a source FDDI ring, a sender-side
//! interface device, the ATM backbone, a receiver-side interface device,
//! and the destination ring. Admitting it means (1) verifying that the
//! worst-case end-to-end delays of the requesting *and all existing*
//! connections stay within their deadlines, and (2) allocating the right
//! amount of synchronous bandwidth `(H_S, H_R)` on the two rings — enough
//! that deadlines hold with slack against future disturbance, but not so
//! much that future connections find the rings exhausted. The paper's
//! algorithm picks
//!
//! `H = H^{min_need} + β · (H^{max_need} − H^{min_need})`
//!
//! along the proportional line ζ, for a tunable β ∈ [0, 1].
//!
//! * [`network::HetNetwork`] — the heterogeneous topology (rings, edge
//!   devices, backbone);
//! * [`delay`] — the decomposition-based end-to-end worst-case delay of
//!   §4 (eq. 7), coupling connections through shared multiplexers;
//! * [`cac`] — the β-CAC of §5.3 and the admission bookkeeping
//!   ([`cac::NetworkState`]);
//! * [`incremental`] — persistent per-server admission state and the
//!   closed-form decision ladder behind the sub-millisecond fast path;
//! * [`experiment`] — the §6 admission-probability simulation;
//! * [`baselines`] — FDDI-only local allocation applied naively to the
//!   heterogeneous network (the strawman of §5/§7), for ablations.
//!
//! # Quick start
//!
//! ```
//! use hetnet_cac::cac::{AdmissionOptions, CacConfig, Decision, NetworkState};
//! use hetnet_cac::connection::ConnectionSpec;
//! use hetnet_cac::network::HetNetwork;
//! use hetnet_traffic::models::DualPeriodicEnvelope;
//! use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = HetNetwork::paper_topology();
//! let mut state = NetworkState::new(net);
//! let opts = AdmissionOptions::beta_search(CacConfig::default());
//!
//! let video = Arc::new(DualPeriodicEnvelope::new(
//!     Bits::from_mbits(2.0), Seconds::from_millis(100.0),
//!     Bits::from_mbits(0.25), Seconds::from_millis(10.0),
//!     BitsPerSec::from_mbps(100.0),
//! )?);
//! let spec = ConnectionSpec::builder()
//!     .source((0, 0))
//!     .dest((1, 2))
//!     .envelope(video)
//!     .deadline(Seconds::from_millis(100.0))
//!     .build()?;
//! match state.admit(spec, &opts)? {
//!     Decision::Admitted { h_s, h_r, delay_bound, .. } => {
//!         assert!(delay_bound <= Seconds::from_millis(100.0));
//!         println!("admitted with H_S = {h_s}, H_R = {h_r}");
//!     }
//!     Decision::Rejected(reason) => println!("rejected: {reason}"),
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod cac;
pub mod connection;
pub mod delay;
pub mod error;
pub mod experiment;
pub mod incremental;
pub mod network;
pub mod reconfig;
pub mod region;
pub mod shard;
pub mod snapshot;
pub mod trace;

pub use cac::{
    AdmissionOptions, AllocationPolicy, CacConfig, Decision, DecisionObserver, DecisionRecord,
    EvalCacheCaps, NetworkState, RejectReason, TeardownReport,
};
pub use connection::{ConnectionId, ConnectionSpec, ConnectionSpecBuilder};
pub use error::CacError;
pub use incremental::FastPathStats;
pub use network::{Component, HetNetwork, HostId, LinkId, RingId, Scheduler, TopologySummary};
pub use reconfig::{ReconfigPlan, ReconfigReport};
pub use shard::{Footprint, ShardCut, ShardedCut, ShardedState, Speculation};
pub use snapshot::{ConnectionSnapshot, StateSnapshot, SNAPSHOT_VERSION};
pub use trace::{BindingConstraint, ConnectionTrace, DecisionTrace, ServerStage};
