//! Baseline allocation policies for ablation studies.
//!
//! The paper argues (§5, §7) that synchronous-bandwidth schemes designed
//! for *stand-alone* FDDI rings (refs. [1], [24]) should not be applied
//! per-segment in a heterogeneous network, and that allocating the
//! extremes of the feasible segment — the bare minimum (β = 0) or
//! everything available (β = 1) — hurts future admissions. This module
//! provides those strawmen so the claims can be measured:
//!
//! * [`Policy::BetaCac`] — the paper's algorithm at a given β (including
//!   the β = 0 and β = 1 extremes);
//! * [`Policy::LocalScheme`] — a classical FDDI-only rule computes
//!   `H_S`/`H_R` *locally* on each ring (no end-to-end view), scaled by a
//!   headroom factor, and the connection is admitted iff the deadlines
//!   happen to hold there.

use crate::cac::{AdmissionOptions, CacConfig, Decision, NetworkState};
use crate::connection::ConnectionSpec;
use crate::error::CacError;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_fddi::schemes::AllocationScheme;
use hetnet_traffic::envelope::Envelope as _;
use hetnet_traffic::units::Seconds;

/// An admission policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// The paper's CAC with the given β.
    BetaCac {
        /// The allocation knob β ∈ [0, 1].
        beta: f64,
    },
    /// The §5.3 strawman: grab `(H_S^{max_avai}, H_R^{max_avai})`
    /// outright. The paper predicts "this will result in the rejection
    /// of any future connection originated from or designated to these
    /// two rings simply because no bandwidth is available."
    GrabEverything,
    /// A stand-alone-FDDI allocation rule applied independently on each
    /// ring.
    LocalScheme {
        /// Which classical rule computes the allocation.
        scheme: AllocationScheme,
        /// Multiplier applied to the rule's output (local rules meet
        /// long-term demand exactly; headroom > 1 leaves room for token
        /// latency).
        headroom: f64,
    },
}

/// Runs one admission request under `policy`.
///
/// # Errors
///
/// Returns [`CacError`] for malformed requests.
pub fn request_with_policy(
    state: &mut NetworkState,
    spec: ConnectionSpec,
    policy: Policy,
    cfg: &CacConfig,
) -> Result<Decision, CacError> {
    match policy {
        Policy::BetaCac { beta } => {
            let opts = AdmissionOptions::beta_search(cfg.clone().with_beta(beta));
            state.admit(spec, &opts)
        }
        Policy::GrabEverything => {
            let h_s = SyncBandwidth::new(state.available_on(spec.source.ring));
            let h_r = SyncBandwidth::new(state.available_on(spec.dest.ring));
            if h_s.per_rotation().value() <= 0.0 || h_r.per_rotation().value() <= 0.0 {
                let floor = SyncBandwidth::new(Seconds::from_nanos(1.0));
                return state.admit(spec, &AdmissionOptions::fixed(cfg.clone(), floor, floor));
            }
            state.admit(spec, &AdmissionOptions::fixed(cfg.clone(), h_s, h_r))
        }
        Policy::LocalScheme { scheme, headroom } => {
            let rho = spec.envelope.sustained_rate();
            let ring_s = *state.network().ring(spec.source.ring);
            let ring_r = *state.network().ring(spec.dest.ring);
            let h_s = scale(scheme.allocate(&ring_s, &[rho])[0], headroom);
            let h_r = scale(scheme.allocate(&ring_r, &[rho])[0], headroom);
            state.admit(spec, &AdmissionOptions::fixed(cfg.clone(), h_s, h_r))
        }
    }
}

fn scale(h: SyncBandwidth, factor: f64) -> SyncBandwidth {
    SyncBandwidth::new(Seconds::new(h.per_rotation().value() * factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{HetNetwork, HostId};
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};
    use std::sync::Arc;

    fn spec(src: (usize, usize), dst: (usize, usize)) -> ConnectionSpec {
        ConnectionSpec {
            source: HostId {
                ring: src.0,
                station: src.1,
            },
            dest: HostId {
                ring: dst.0,
                station: dst.1,
            },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(2.0),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(100.0),
            class: 0,
        }
    }

    #[test]
    fn beta_policy_delegates_to_cac() {
        let mut state = NetworkState::new(HetNetwork::paper_topology());
        let d = request_with_policy(
            &mut state,
            spec((0, 0), (1, 0)),
            Policy::BetaCac { beta: 0.5 },
            &CacConfig::default(),
        )
        .unwrap();
        assert!(d.is_admitted());
    }

    #[test]
    fn local_proportional_without_headroom_fails_tight_deadlines() {
        // ProportionalToRate meets the 20 Mb/s demand with zero headroom:
        // the MAC is then (borderline) unstable and the worst-case delay
        // unbounded, so the admission check must reject.
        let mut state = NetworkState::new(HetNetwork::paper_topology());
        let d = request_with_policy(
            &mut state,
            spec((0, 0), (1, 0)),
            Policy::LocalScheme {
                scheme: AllocationScheme::ProportionalToRate,
                headroom: 1.0,
            },
            &CacConfig::default(),
        )
        .unwrap();
        assert!(!d.is_admitted());
    }

    #[test]
    fn grab_everything_starves_the_rings() {
        let mut state = NetworkState::new(HetNetwork::paper_topology());
        let cfg = CacConfig::default();
        let first = request_with_policy(
            &mut state,
            spec((0, 0), (1, 0)),
            Policy::GrabEverything,
            &cfg,
        )
        .unwrap();
        assert!(first.is_admitted());
        // The whole budget of rings 0 and 1 is gone...
        assert!(state.available_on(0).value() < 1e-9);
        assert!(state.available_on(1).value() < 1e-9);
        // ...so anything touching those rings is rejected, exactly as
        // the paper predicts for this strawman.
        let second = request_with_policy(
            &mut state,
            spec((0, 1), (2, 0)),
            Policy::GrabEverything,
            &cfg,
        )
        .unwrap();
        assert!(!second.is_admitted());
    }

    #[test]
    fn local_proportional_with_headroom_can_admit() {
        let mut state = NetworkState::new(HetNetwork::paper_topology());
        let d = request_with_policy(
            &mut state,
            spec((0, 0), (1, 0)),
            Policy::LocalScheme {
                scheme: AllocationScheme::ProportionalToRate,
                headroom: 1.8,
            },
            &CacConfig::default(),
        )
        .unwrap();
        assert!(d.is_admitted(), "{d:?}");
    }
}
