//! The feasible region of allocations (paper §5.2, Theorems 3–4).
//!
//! For a requesting connection, an allocation pair `(H_S, H_R)` is
//! *feasible* if every existing connection's deadline (eq. 24) and the
//! newcomer's deadline (eq. 25) hold. Theorem 3 states each
//! connection's region `R_{f,g}` is closed and convex over the
//! allocation rectangle; Theorem 4 that the feasible region is their
//! intersection — empty exactly when the maximum allocation fails.
//!
//! This module materializes the region on a grid: it powers the
//! `feasible_region` example (the paper's Figure 6 as ASCII art) and
//! the empirical convexity tests backing the CAC's binary searches.

use crate::cac::CacConfig;
use crate::connection::ConnectionSpec;
use crate::delay::{CandidateOutcome, Evaluator, PathInput};
use crate::error::CacError;
use crate::network::HetNetwork;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_traffic::units::Seconds;
use std::sync::Arc;

/// A sampled map of the feasible region on the `H_S`–`H_R` plane.
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// Sampled `H_S` values (columns), ascending.
    pub h_s: Vec<SyncBandwidth>,
    /// Sampled `H_R` values (rows), ascending.
    pub h_r: Vec<SyncBandwidth>,
    /// `cells[row][col]`: whether `(h_s[col], h_r[row])` is feasible.
    pub cells: Vec<Vec<bool>>,
}

impl RegionMap {
    /// Whether any sampled point is feasible.
    #[must_use]
    pub fn any_feasible(&self) -> bool {
        self.cells.iter().flatten().any(|&c| c)
    }

    /// Fraction of sampled points that are feasible.
    #[must_use]
    pub fn feasible_fraction(&self) -> f64 {
        let total = self.cells.len() * self.cells.first().map_or(0, Vec::len);
        if total == 0 {
            return 0.0;
        }
        let yes = self.cells.iter().flatten().filter(|&&c| c).count();
        yes as f64 / total as f64
    }

    /// Empirical convexity check along rows, columns and both diagonals:
    /// in a convex region every 1-D slice of the grid is a single run of
    /// feasible cells. Returns the number of slices violating that.
    #[must_use]
    pub fn convexity_violations(&self) -> usize {
        let rows = self.cells.len();
        if rows == 0 {
            return 0;
        }
        let cols = self.cells[0].len();
        let mut violations = 0;
        let mut check = |line: &[bool]| {
            // A single run: pattern false* true* false*.
            let mut seen_true = false;
            let mut ended = false;
            for &c in line {
                if c {
                    if ended {
                        violations += 1;
                        return;
                    }
                    seen_true = true;
                } else if seen_true {
                    ended = true;
                }
            }
        };
        for row in &self.cells {
            check(row);
        }
        for col in 0..cols {
            let line: Vec<bool> = (0..rows).map(|r| self.cells[r][col]).collect();
            check(&line);
        }
        // Diagonals (both orientations).
        for start in 0..rows + cols - 1 {
            let mut d1 = Vec::new();
            let mut d2 = Vec::new();
            for r in 0..rows {
                let c1 = start as isize - r as isize;
                if (0..cols as isize).contains(&c1) {
                    d1.push(self.cells[r][c1 as usize]);
                }
                let c2 = r as isize + start as isize - (rows as isize - 1);
                if (0..cols as isize).contains(&c2) {
                    d2.push(self.cells[r][c2 as usize]);
                }
            }
            if d1.len() > 1 {
                check(&d1);
            }
            if d2.len() > 1 {
                check(&d2);
            }
        }
        violations
    }

    /// Renders the region as ASCII art (rows printed top-down with
    /// `H_R` decreasing, matching the paper's Figure 6 orientation).
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        out.push_str("H_R\n");
        for (ri, row) in self.cells.iter().enumerate().rev() {
            let h_r = self.h_r[ri].per_rotation().as_millis();
            out.push_str(&format!("{h_r:5.2} |"));
            for &cell in row {
                out.push(if cell { '#' } else { '.' });
            }
            out.push('\n');
        }
        let cols = self.h_s.len();
        out.push_str(&format!("      +{}\n", "-".repeat(cols)));
        let lo = self.h_s.first().map_or(0.0, |h| h.per_rotation().as_millis());
        let hi = self.h_s.last().map_or(0.0, |h| h.per_rotation().as_millis());
        out.push_str(&format!(
            "       H_S: {lo:.2} .. {hi:.2} ms/rotation ('#' feasible)\n"
        ));
        out
    }
}

/// Samples the feasible region of `spec` against the currently `active`
/// connections on a `grid × grid` lattice spanning
/// `[min_abs, max_avail]` on both axes.
///
/// # Errors
///
/// Returns [`CacError`] for malformed requests or networks.
///
/// # Panics
///
/// Panics if `grid < 2`.
pub fn sample_region(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionMap, CacError> {
    assert!(grid >= 2, "grid must be at least 2x2");
    let ring_s = net.ring(spec.source.ring);
    let ring_r = net.ring(spec.dest.ring);
    let min_s = hetnet_fddi::frames::min_allocation(ring_s, cfg.min_frame_efficiency);
    let min_r = hetnet_fddi::frames::min_allocation(ring_r, cfg.min_frame_efficiency);
    let max_s = SyncBandwidth::new(available_s);
    let max_r = SyncBandwidth::new(available_r);

    let axis = |min: SyncBandwidth, max: SyncBandwidth| -> Vec<SyncBandwidth> {
        (0..grid)
            .map(|k| min.lerp(max, k as f64 / (grid - 1) as f64))
            .collect()
    };
    let h_s = axis(min_s, max_s);
    let h_r = axis(min_r, max_r);

    let mut ev = Evaluator::new(net, cfg.eval.clone());
    let mut cells = Vec::with_capacity(grid);
    for hr in &h_r {
        let mut row = Vec::with_capacity(grid);
        for hs in &h_s {
            let mut inputs = active.to_vec();
            inputs.push(PathInput {
                source: spec.source,
                dest: spec.dest,
                envelope: Arc::clone(&spec.envelope),
                h_s: *hs,
                h_r: *hr,
            });
            // Candidate-only feasibility: existing deadlines are
            // monotone in the newcomer's allocation, so the caller
            // checks them once at the maximum corner (as the CAC does);
            // here we map the newcomer's own constraint (eq. 25).
            let feasible = match ev.evaluate_candidate(&inputs)? {
                CandidateOutcome::Feasible { candidate, .. } => {
                    candidate.total <= spec.deadline
                }
                CandidateOutcome::Infeasible(_) => false,
            };
            row.push(feasible);
        }
        cells.push(row);
    }
    Ok(RegionMap { h_s, h_r, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::HostId;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};

    fn spec(deadline_ms: f64) -> ConnectionSpec {
        ConnectionSpec {
            source: HostId { ring: 0, station: 0 },
            dest: HostId { ring: 1, station: 0 },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(2.0),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(deadline_ms),
        }
    }

    fn map(deadline_ms: f64, grid: usize) -> RegionMap {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        sample_region(
            &net,
            &[],
            &spec(deadline_ms),
            Seconds::from_millis(7.2),
            Seconds::from_millis(7.2),
            grid,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn generous_deadline_has_large_feasible_region() {
        let m = map(150.0, 9);
        assert!(m.any_feasible());
        assert!(m.feasible_fraction() > 0.3, "{}", m.ascii());
        // The top-right corner (max allocations) is feasible.
        assert!(*m.cells.last().unwrap().last().unwrap(), "{}", m.ascii());
    }

    #[test]
    fn impossible_deadline_has_empty_region() {
        let m = map(1.0, 6);
        assert!(!m.any_feasible());
        assert_eq!(m.feasible_fraction(), 0.0);
    }

    #[test]
    fn region_is_monotone_staircase() {
        // Theorem 3's convexity shows up on the grid as single-run rows,
        // columns and diagonals.
        let m = map(60.0, 9);
        assert!(m.any_feasible());
        assert!(!*m.cells.first().unwrap().first().unwrap());
        assert_eq!(m.convexity_violations(), 0, "{}", m.ascii());
    }

    #[test]
    fn ascii_renders_dimensions() {
        let m = map(150.0, 5);
        let art = m.ascii();
        assert!(art.contains('#'));
        assert!(art.lines().count() >= 7);
    }
}
