//! The feasible region of allocations (paper §5.2, Theorems 3–4).
//!
//! For a requesting connection, an allocation pair `(H_S, H_R)` is
//! *feasible* if every existing connection's deadline (eq. 24) and the
//! newcomer's deadline (eq. 25) hold. Theorem 3 states each
//! connection's region `R_{f,g}` is closed and convex over the
//! allocation rectangle; Theorem 4 that the feasible region is their
//! intersection — empty exactly when the maximum allocation fails.
//!
//! This module materializes the region on a grid: it powers the
//! `feasible_region` example (the paper's Figure 6 as ASCII art) and
//! the empirical convexity tests backing the CAC's binary searches.

use crate::cac::CacConfig;
use crate::connection::ConnectionSpec;
use crate::delay::{CacheStats, CandidateOutcome, Evaluator, PathInput};
use crate::error::CacError;
use crate::network::HetNetwork;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_traffic::units::Seconds;
use std::sync::Arc;

/// A sampled map of the feasible region on the `H_S`–`H_R` plane.
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// Sampled `H_S` values (columns), ascending.
    pub h_s: Vec<SyncBandwidth>,
    /// Sampled `H_R` values (rows), ascending.
    pub h_r: Vec<SyncBandwidth>,
    /// `cells[row][col]`: whether `(h_s[col], h_r[row])` is feasible.
    pub cells: Vec<Vec<bool>>,
}

impl RegionMap {
    /// Whether any sampled point is feasible.
    #[must_use]
    pub fn any_feasible(&self) -> bool {
        self.cells.iter().flatten().any(|&c| c)
    }

    /// Fraction of sampled points that are feasible.
    #[must_use]
    pub fn feasible_fraction(&self) -> f64 {
        let total = self.cells.len() * self.cells.first().map_or(0, Vec::len);
        if total == 0 {
            return 0.0;
        }
        let yes = self.cells.iter().flatten().filter(|&&c| c).count();
        yes as f64 / total as f64
    }

    /// Empirical convexity check along rows, columns and both diagonals:
    /// in a convex region every 1-D slice of the grid is a single run of
    /// feasible cells. Returns the number of slices violating that.
    #[must_use]
    pub fn convexity_violations(&self) -> usize {
        let rows = self.cells.len();
        if rows == 0 {
            return 0;
        }
        let cols = self.cells[0].len();
        let mut violations = 0;
        let mut check = |line: &[bool]| {
            // A single run: pattern false* true* false*.
            let mut seen_true = false;
            let mut ended = false;
            for &c in line {
                if c {
                    if ended {
                        violations += 1;
                        return;
                    }
                    seen_true = true;
                } else if seen_true {
                    ended = true;
                }
            }
        };
        for row in &self.cells {
            check(row);
        }
        for col in 0..cols {
            let line: Vec<bool> = (0..rows).map(|r| self.cells[r][col]).collect();
            check(&line);
        }
        // Diagonals (both orientations).
        for start in 0..rows + cols - 1 {
            let mut d1 = Vec::new();
            let mut d2 = Vec::new();
            for r in 0..rows {
                let c1 = start as isize - r as isize;
                if (0..cols as isize).contains(&c1) {
                    d1.push(self.cells[r][c1 as usize]);
                }
                let c2 = r as isize + start as isize - (rows as isize - 1);
                if (0..cols as isize).contains(&c2) {
                    d2.push(self.cells[r][c2 as usize]);
                }
            }
            if d1.len() > 1 {
                check(&d1);
            }
            if d2.len() > 1 {
                check(&d2);
            }
        }
        violations
    }

    /// Renders the region as ASCII art (rows printed top-down with
    /// `H_R` decreasing, matching the paper's Figure 6 orientation).
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        out.push_str("H_R\n");
        for (ri, row) in self.cells.iter().enumerate().rev() {
            let h_r = self.h_r[ri].per_rotation().as_millis();
            out.push_str(&format!("{h_r:5.2} |"));
            for &cell in row {
                out.push(if cell { '#' } else { '.' });
            }
            out.push('\n');
        }
        let cols = self.h_s.len();
        out.push_str(&format!("      +{}\n", "-".repeat(cols)));
        let lo = self
            .h_s
            .first()
            .map_or(0.0, |h| h.per_rotation().as_millis());
        let hi = self
            .h_s
            .last()
            .map_or(0.0, |h| h.per_rotation().as_millis());
        out.push_str(&format!(
            "       H_S: {lo:.2} .. {hi:.2} ms/rotation ('#' feasible)\n"
        ));
        out
    }
}

/// A sampled region plus the sweep's evaluator cache statistics
/// (summed over every worker's evaluator when the sweep is parallel).
#[derive(Clone, Debug)]
pub struct RegionSample {
    /// The sampled feasibility map.
    pub map: RegionMap,
    /// Cache hit/miss counters accumulated by the sweep.
    pub stats: CacheStats,
}

/// Samples the feasible region of `spec` against the currently `active`
/// connections on a `grid × grid` lattice spanning
/// `[min_abs, max_avail]` on both axes.
///
/// Cells are evaluated in parallel across the machine's available
/// cores. Each worker owns a private [`Evaluator`], and cells are
/// independent, so the result is bit-identical to a sequential sweep
/// (see [`sample_region_seq`]).
///
/// # Errors
///
/// Returns [`CacError`] for malformed requests or networks, including
/// [`CacError::InvalidRequest`] if `grid < 2` (one sample per axis
/// cannot span a `[min, max]` interval).
pub fn sample_region(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionMap, CacError> {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    Ok(sample_region_threads(
        net,
        active,
        spec,
        available_s,
        available_r,
        grid,
        cfg,
        threads,
    )?
    .map)
}

/// Sequential [`sample_region`]: one evaluator, cells in row-major
/// order. The benchmark baseline the parallel sweep is measured (and
/// bit-compared) against.
///
/// # Errors
///
/// Identical to [`sample_region`].
pub fn sample_region_seq(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionMap, CacError> {
    Ok(sample_region_threads(net, active, spec, available_s, available_r, grid, cfg, 1)?.map)
}

/// [`sample_region`] with an explicit worker count, returning the
/// sweep's cache statistics alongside the map.
///
/// The `grid × grid` cells are split into `threads` contiguous
/// row-major chunks, one scoped worker thread per chunk, each with its
/// own [`Evaluator`]. Because every cell's evaluation is independent of
/// the others (caches only short-circuit recomputation; hits return the
/// values the miss path would compute), the stitched result is
/// bit-identical for every `threads` value. `threads` is clamped to
/// `[1, grid²]`.
///
/// # Errors
///
/// Identical to [`sample_region`].
#[allow(clippy::too_many_arguments)]
pub fn sample_region_threads(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
    threads: usize,
) -> Result<RegionSample, CacError> {
    if grid < 2 {
        return Err(CacError::InvalidRequest(format!(
            "region grid must be at least 2x2, got {grid}x{grid}"
        )));
    }
    let ring_s = net.ring(spec.source.ring);
    let ring_r = net.ring(spec.dest.ring);
    let min_s = hetnet_fddi::frames::min_allocation(ring_s, cfg.min_frame_efficiency);
    let min_r = hetnet_fddi::frames::min_allocation(ring_r, cfg.min_frame_efficiency);
    let max_s = SyncBandwidth::new(available_s);
    let max_r = SyncBandwidth::new(available_r);

    let axis = |min: SyncBandwidth, max: SyncBandwidth| -> Vec<SyncBandwidth> {
        (0..grid)
            .map(|k| min.lerp(max, k as f64 / (grid - 1) as f64))
            .collect()
    };
    let h_s = axis(min_s, max_s);
    let h_r = axis(min_r, max_r);

    // The shared input prefix (active connections + candidate slot) is
    // built once; each worker clones it once and then only rewrites the
    // candidate's allocations per cell.
    let mut base: Vec<PathInput> = active.to_vec();
    base.push(PathInput {
        source: spec.source,
        dest: spec.dest,
        envelope: Arc::clone(&spec.envelope),
        h_s: h_s[0],
        h_r: h_r[0],
    });

    // Evaluates the row-major cells `range`, returning their
    // feasibility bits and the worker evaluator's cache statistics.
    let eval_range = |range: std::ops::Range<usize>| -> Result<(Vec<bool>, CacheStats), CacError> {
        let mut ev = Evaluator::new(net, cfg.eval.clone());
        let mut inputs = base.clone();
        let mut bits = Vec::with_capacity(range.len());
        for idx in range {
            let cand = inputs.last_mut().expect("candidate slot present");
            cand.h_s = h_s[idx % grid];
            cand.h_r = h_r[idx / grid];
            // Candidate-only feasibility: existing deadlines are
            // monotone in the newcomer's allocation, so the caller
            // checks them once at the maximum corner (as the CAC does);
            // here we map the newcomer's own constraint (eq. 25).
            let feasible = match ev.evaluate_candidate(&inputs)? {
                CandidateOutcome::Feasible { candidate, .. } => candidate.total <= spec.deadline,
                CandidateOutcome::Infeasible(_) => false,
            };
            bits.push(feasible);
        }
        Ok((bits, ev.cache_stats()))
    };

    let total = grid * grid;
    let workers = threads.clamp(1, total);
    let mut flat = Vec::with_capacity(total);
    let mut stats = CacheStats::default();
    if workers == 1 {
        let (bits, s) = eval_range(0..total)?;
        flat = bits;
        stats = s;
    } else {
        let chunk = total.div_ceil(workers);
        let chunks: Vec<Result<(Vec<bool>, CacheStats), CacError>> = std::thread::scope(|scope| {
            let eval_range = &eval_range;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    scope.spawn(move || eval_range(lo..hi.max(lo)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region worker panicked"))
                .collect()
        });
        for c in chunks {
            let (bits, s) = c?;
            flat.extend(bits);
            stats.merge(&s);
        }
    }
    debug_assert_eq!(flat.len(), total);
    let cells: Vec<Vec<bool>> = flat.chunks(grid).map(<[bool]>::to_vec).collect();
    Ok(RegionSample {
        map: RegionMap { h_s, h_r, cells },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::HostId;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};

    fn spec(deadline_ms: f64) -> ConnectionSpec {
        ConnectionSpec {
            source: HostId {
                ring: 0,
                station: 0,
            },
            dest: HostId {
                ring: 1,
                station: 0,
            },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(2.0),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(deadline_ms),
        }
    }

    fn map(deadline_ms: f64, grid: usize) -> RegionMap {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        sample_region(
            &net,
            &[],
            &spec(deadline_ms),
            Seconds::from_millis(7.2),
            Seconds::from_millis(7.2),
            grid,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn generous_deadline_has_large_feasible_region() {
        let m = map(150.0, 9);
        assert!(m.any_feasible());
        assert!(m.feasible_fraction() > 0.3, "{}", m.ascii());
        // The top-right corner (max allocations) is feasible.
        assert!(*m.cells.last().unwrap().last().unwrap(), "{}", m.ascii());
    }

    #[test]
    fn impossible_deadline_has_empty_region() {
        let m = map(1.0, 6);
        assert!(!m.any_feasible());
        assert_eq!(m.feasible_fraction(), 0.0);
    }

    #[test]
    fn region_is_monotone_staircase() {
        // Theorem 3's convexity shows up on the grid as single-run rows,
        // columns and diagonals.
        let m = map(60.0, 9);
        assert!(m.any_feasible());
        assert!(!*m.cells.first().unwrap().first().unwrap());
        assert_eq!(m.convexity_violations(), 0, "{}", m.ascii());
    }

    #[test]
    fn degenerate_grid_is_an_error_not_a_panic() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        for grid in [0, 1] {
            let r = sample_region(
                &net,
                &[],
                &spec(100.0),
                Seconds::from_millis(7.2),
                Seconds::from_millis(7.2),
                grid,
                &cfg,
            );
            assert!(matches!(r, Err(CacError::InvalidRequest(_))), "grid {grid}");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_map() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        let run = |threads| {
            sample_region_threads(
                &net,
                &[],
                &spec(60.0),
                Seconds::from_millis(7.2),
                Seconds::from_millis(7.2),
                5,
                &cfg,
                threads,
            )
            .unwrap()
        };
        let seq = run(1);
        for threads in [2, 3, 7, 64] {
            let par = run(threads);
            assert_eq!(par.map.cells, seq.map.cells, "threads {threads}");
        }
        // The sequential single evaluator reuses everything it can.
        assert!(seq.stats.stage1_hits > 0);
        assert!(seq.stats.mux_hits > 0);
    }

    #[test]
    fn ascii_renders_dimensions() {
        let m = map(150.0, 5);
        let art = m.ascii();
        assert!(art.contains('#'));
        assert!(art.lines().count() >= 7);
    }
}
