//! The feasible region of allocations (paper §5.2, Theorems 3–4).
//!
//! For a requesting connection, an allocation pair `(H_S, H_R)` is
//! *feasible* if every existing connection's deadline (eq. 24) and the
//! newcomer's deadline (eq. 25) hold. Theorem 3 states each
//! connection's region `R_{f,g}` is closed and convex over the
//! allocation rectangle; Theorem 4 that the feasible region is their
//! intersection — empty exactly when the maximum allocation fails.
//!
//! This module materializes the region on a grid: it powers the
//! `feasible_region` example (the paper's Figure 6 as ASCII art) and
//! the empirical convexity tests backing the CAC's binary searches.
//!
//! Two solvers produce the same map:
//!
//! * the **dense sweep** ([`sample_region_seq`],
//!   [`sample_region_threads`]) evaluates all `G²` cells, optionally
//!   split across worker threads — the exhaustive baseline;
//! * the **frontier tracer** ([`sample_region_frontier`], the default
//!   behind [`sample_region`]) exploits the region's structure: each
//!   row is a single run of feasible cells whose endpoints move
//!   monotonically row to row (the staircase Theorems 3–4 guarantee),
//!   so per row it finds one feasible pivot seeded from the previous
//!   row's run and bisects both endpoints — `O(G log G)` evaluations
//!   instead of `G²`. Every evaluation is memoized and the traced map
//!   is certified afterwards (recorded evaluations must match the
//!   reconstruction, feasible rows must form one contiguous band
//!   reaching the top row, and the runs must widen monotonically); any
//!   witnessed violation discards the trace and re-runs the dense
//!   sweep with the same warm evaluator, so the returned map is
//!   bit-identical to [`sample_region_seq`]'s.

use crate::cac::CacConfig;
use crate::connection::ConnectionSpec;
use crate::delay::{CacheStats, CandidateOutcome, Evaluator, PathInput};
use crate::error::CacError;
use crate::network::HetNetwork;
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_obs as obs;
use hetnet_traffic::units::Seconds;
use std::sync::Arc;

/// A sampled map of the feasible region on the `H_S`–`H_R` plane,
/// stored row-major (`h_r.len()` rows of `h_s.len()` cells).
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// Sampled `H_S` values (columns), ascending.
    pub h_s: Vec<SyncBandwidth>,
    /// Sampled `H_R` values (rows), ascending.
    pub h_r: Vec<SyncBandwidth>,
    /// Row-major feasibility bits: cell `(row, col)` lives at
    /// `row * h_s.len() + col`.
    cells: Vec<bool>,
}

impl RegionMap {
    fn new(h_s: Vec<SyncBandwidth>, h_r: Vec<SyncBandwidth>, cells: Vec<bool>) -> Self {
        debug_assert_eq!(cells.len(), h_s.len() * h_r.len());
        Self { h_s, h_r, cells }
    }

    /// Number of rows (sampled `H_R` values).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.h_r.len()
    }

    /// Number of columns (sampled `H_S` values).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.h_s.len()
    }

    /// Whether `(h_s[col], h_r[row])` is feasible.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(col < self.cols(), "column {col} out of range");
        self.cells[row * self.cols() + col]
    }

    /// The flat row-major feasibility bits.
    #[must_use]
    pub fn cells(&self) -> &[bool] {
        &self.cells
    }

    /// One row of feasibility bits.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row(&self, row: usize) -> &[bool] {
        let cols = self.cols();
        &self.cells[row * cols..(row + 1) * cols]
    }

    /// Whether any sampled point is feasible.
    #[must_use]
    pub fn any_feasible(&self) -> bool {
        self.cells.iter().any(|&c| c)
    }

    /// Fraction of sampled points that are feasible.
    #[must_use]
    pub fn feasible_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let yes = self.cells.iter().filter(|&&c| c).count();
        yes as f64 / self.cells.len() as f64
    }

    /// Empirical convexity check along rows, columns and both diagonals:
    /// in a convex region every 1-D slice of the grid is a single run of
    /// feasible cells. Returns the number of slices violating that.
    #[must_use]
    pub fn convexity_violations(&self) -> usize {
        grid_convexity_violations(&self.cells, self.rows(), self.cols())
    }

    /// Renders the region as ASCII art (rows printed top-down with
    /// `H_R` decreasing, matching the paper's Figure 6 orientation).
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        out.push_str("H_R\n");
        for ri in (0..self.rows()).rev() {
            let h_r = self.h_r[ri].per_rotation().as_millis();
            out.push_str(&format!("{h_r:5.2} |"));
            for &cell in self.row(ri) {
                out.push(if cell { '#' } else { '.' });
            }
            out.push('\n');
        }
        let cols = self.h_s.len();
        out.push_str(&format!("      +{}\n", "-".repeat(cols)));
        let lo = self
            .h_s
            .first()
            .map_or(0.0, |h| h.per_rotation().as_millis());
        let hi = self
            .h_s
            .last()
            .map_or(0.0, |h| h.per_rotation().as_millis());
        out.push_str(&format!(
            "       H_S: {lo:.2} .. {hi:.2} ms/rotation ('#' feasible)\n"
        ));
        out
    }
}

/// Whether a line of cells is a single run: `false* true* false*`.
fn single_run(line: impl Iterator<Item = bool>) -> bool {
    let mut seen_true = false;
    let mut ended = false;
    for c in line {
        if c {
            if ended {
                return false;
            }
            seen_true = true;
        } else if seen_true {
            ended = true;
        }
    }
    true
}

/// Number of grid lines (rows, columns, both diagonal orientations)
/// that are not a single run of feasible cells, walked in place.
fn grid_convexity_violations(cells: &[bool], rows: usize, cols: usize) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    let at = |r: usize, c: usize| cells[r * cols + c];
    let mut violations = 0;
    for r in 0..rows {
        if !single_run(cells[r * cols..(r + 1) * cols].iter().copied()) {
            violations += 1;
        }
    }
    for c in 0..cols {
        if !single_run((0..rows).map(|r| at(r, c))) {
            violations += 1;
        }
    }
    // Diagonals (both orientations); only diagonals longer than one
    // cell can violate.
    for start in 0..rows + cols - 1 {
        // Anti-diagonal: col = start - row, so row ranges over
        // [start-cols+1, start] clamped to the grid.
        let a_lo = (start + 1).saturating_sub(cols);
        let a_hi = (rows - 1).min(start);
        if a_hi - a_lo >= 1 && !single_run((a_lo..=a_hi).map(|r| at(r, start - r))) {
            violations += 1;
        }
        // Main diagonal: col = row + start - (rows-1), so row ranges
        // over [rows-1-start, rows-1-start+cols-1] clamped to the grid.
        let m_lo = (rows - 1).saturating_sub(start);
        let m_hi = (rows - 1).min(rows + cols - 2 - start);
        if m_hi - m_lo >= 1 && !single_run((m_lo..=m_hi).map(|r| at(r, r + start + 1 - rows))) {
            violations += 1;
        }
    }
    violations
}

/// A sampled region plus how the sweep earned it: the evaluator's cache
/// statistics (summed over every worker's evaluator when the sweep is
/// parallel) and the number of candidate evaluations performed.
#[derive(Clone, Debug)]
pub struct RegionSample {
    /// The sampled feasibility map.
    pub map: RegionMap,
    /// Cache hit/miss counters accumulated by the sweep.
    pub stats: CacheStats,
    /// Calls to `Evaluator::evaluate_candidate` the sweep performed
    /// (`grid²` for dense sweeps; typically a few per row for the
    /// frontier tracer).
    pub evals: u64,
    /// Whether a frontier trace failed certification and the map was
    /// recomputed by the dense sweep (always `false` for dense sweeps).
    pub fell_back: bool,
}

/// Samples the feasible region of `spec` against the currently `active`
/// connections on a `grid × grid` lattice spanning
/// `[min_abs, max_avail]` on both axes.
///
/// Uses the frontier tracer ([`sample_region_frontier`]): `O(G log G)`
/// evaluations on the staircase regions the analysis produces, with a
/// certified fallback to the dense sweep, so the result is always
/// bit-identical to [`sample_region_seq`].
///
/// # Errors
///
/// Returns [`CacError`] for malformed requests or networks, including
/// [`CacError::InvalidRequest`] if `grid < 2` (one sample per axis
/// cannot span a `[min, max]` interval).
pub fn sample_region(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionMap, CacError> {
    Ok(sample_region_frontier(net, active, spec, available_s, available_r, grid, cfg)?.map)
}

/// Sequential dense sweep: one evaluator, all `grid²` cells in
/// row-major order. The exhaustive baseline every other solver is
/// measured (and bit-compared) against.
///
/// # Errors
///
/// Identical to [`sample_region`].
pub fn sample_region_seq(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionMap, CacError> {
    Ok(sample_region_threads(net, active, spec, available_s, available_r, grid, cfg, 1)?.map)
}

/// Axis samples plus the input vector whose last slot is the
/// candidate's (rewritten per cell) — what [`sweep_setup`] hands every
/// solver.
type SweepSetup = (Vec<SyncBandwidth>, Vec<SyncBandwidth>, Vec<PathInput>);

/// The shared sweep setup: axis samples and the input vector whose last
/// slot is the candidate's (rewritten per cell).
fn sweep_setup(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<SweepSetup, CacError> {
    if grid < 2 {
        return Err(CacError::InvalidRequest(format!(
            "region grid must be at least 2x2, got {grid}x{grid}"
        )));
    }
    let ring_s = net.ring(spec.source.ring);
    let ring_r = net.ring(spec.dest.ring);
    let min_s = hetnet_fddi::frames::min_allocation(ring_s, cfg.min_frame_efficiency);
    let min_r = hetnet_fddi::frames::min_allocation(ring_r, cfg.min_frame_efficiency);
    let max_s = SyncBandwidth::new(available_s);
    let max_r = SyncBandwidth::new(available_r);

    let axis = |min: SyncBandwidth, max: SyncBandwidth| -> Vec<SyncBandwidth> {
        (0..grid)
            .map(|k| min.lerp(max, k as f64 / (grid - 1) as f64))
            .collect()
    };
    let h_s = axis(min_s, max_s);
    let h_r = axis(min_r, max_r);

    let mut base: Vec<PathInput> = active.to_vec();
    base.push(PathInput {
        source: spec.source,
        dest: spec.dest,
        envelope: Arc::clone(&spec.envelope),
        h_s: h_s[0],
        h_r: h_r[0],
        class: spec.class,
    });
    Ok((h_s, h_r, base))
}

/// Dense sweep with an explicit worker count, returning the sweep's
/// cache statistics alongside the map.
///
/// The `grid × grid` cells are split into `threads` contiguous
/// row-major chunks, one scoped worker thread per chunk, each with its
/// own [`Evaluator`]. Because every cell's evaluation is independent of
/// the others (caches only short-circuit recomputation; hits return the
/// values the miss path would compute), the stitched result is
/// bit-identical for every `threads` value. `threads` is clamped to
/// `[1, grid²]`.
///
/// # Errors
///
/// Identical to [`sample_region`].
#[allow(clippy::too_many_arguments)]
pub fn sample_region_threads(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
    threads: usize,
) -> Result<RegionSample, CacError> {
    let (h_s, h_r, base) = sweep_setup(net, active, spec, available_s, available_r, grid, cfg)?;

    // Evaluates the row-major cells `range`, returning their
    // feasibility bits and the worker evaluator's cache statistics.
    let eval_range = |range: std::ops::Range<usize>| -> Result<(Vec<bool>, CacheStats), CacError> {
        let mut ev = Evaluator::new(net, cfg.eval.clone());
        let mut inputs = base.clone();
        let mut bits = Vec::with_capacity(range.len());
        for idx in range {
            let cand = inputs.last_mut().expect("candidate slot present");
            cand.h_s = h_s[idx % grid];
            cand.h_r = h_r[idx / grid];
            // Candidate-only feasibility: existing deadlines are
            // monotone in the newcomer's allocation, so the caller
            // checks them once at the maximum corner (as the CAC does);
            // here we map the newcomer's own constraint (eq. 25).
            let feasible = match ev.evaluate_candidate(&inputs)? {
                CandidateOutcome::Feasible { candidate, .. } => candidate.total <= spec.deadline,
                CandidateOutcome::Infeasible(_) => false,
            };
            bits.push(feasible);
        }
        Ok((bits, ev.cache_stats()))
    };

    let total = grid * grid;
    let workers = threads.clamp(1, total);
    let mut flat = Vec::with_capacity(total);
    let mut stats = CacheStats::default();
    if workers == 1 {
        let (bits, s) = eval_range(0..total)?;
        flat = bits;
        stats = s;
    } else {
        let chunk = total.div_ceil(workers);
        let chunks: Vec<Result<(Vec<bool>, CacheStats), CacError>> = std::thread::scope(|scope| {
            let eval_range = &eval_range;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    scope.spawn(move || eval_range(lo..hi.max(lo)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region worker panicked"))
                .collect()
        });
        for c in chunks {
            let (bits, s) = c?;
            flat.extend(bits);
            stats.merge(&s);
        }
    }
    debug_assert_eq!(flat.len(), total);
    Ok(RegionSample {
        map: RegionMap::new(h_s, h_r, flat),
        stats,
        evals: total as u64,
        fell_back: false,
    })
}

/// Frontier-tracing sweep: binary-searches each row's feasible run,
/// seeded from the previous row (see the module docs), then certifies
/// the trace and falls back to the dense sweep — reusing the same warm
/// evaluator, so the result is still bit-identical — if any recorded
/// evaluation contradicts the traced staircase.
///
/// # Errors
///
/// Identical to [`sample_region`].
pub fn sample_region_frontier(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    available_s: Seconds,
    available_r: Seconds,
    grid: usize,
    cfg: &CacConfig,
) -> Result<RegionSample, CacError> {
    let _span = obs::span("sample_region_frontier");
    let (h_s, h_r, mut inputs) =
        sweep_setup(net, active, spec, available_s, available_r, grid, cfg)?;
    let mut ev = Evaluator::new(net, cfg.eval.clone());
    let (flat, evals, fell_back) = frontier_map(grid, |r, c| {
        let cand = inputs.last_mut().expect("candidate slot present");
        cand.h_s = h_s[c];
        cand.h_r = h_r[r];
        Ok(match ev.evaluate_candidate(&inputs)? {
            CandidateOutcome::Feasible { candidate, .. } => candidate.total <= spec.deadline,
            CandidateOutcome::Infeasible(_) => false,
        })
    })?;
    Ok(RegionSample {
        map: RegionMap::new(h_s, h_r, flat),
        stats: ev.cache_stats(),
        evals,
        fell_back,
    })
}

/// A feasibility oracle: `oracle(row, col)` decides one grid cell.
/// Generic so the tracer can be exercised against synthetic
/// (adversarial) regions in tests.
trait Oracle: FnMut(usize, usize) -> Result<bool, CacError> {}
impl<T: FnMut(usize, usize) -> Result<bool, CacError>> Oracle for T {}

/// Memoized oracle call: each cell is evaluated at most once across
/// trace *and* fallback, and `evals` counts actual evaluations.
fn eval_memo(
    memo: &mut [Option<bool>],
    evals: &mut u64,
    oracle: &mut impl Oracle,
    grid: usize,
    r: usize,
    c: usize,
) -> Result<bool, CacError> {
    if let Some(v) = memo[r * grid + c] {
        return Ok(v);
    }
    let v = oracle(r, c)?;
    memo[r * grid + c] = Some(v);
    *evals += 1;
    Ok(v)
}

/// One gallop/bisect probe, narrated for the tracing layer.
fn step_event(name: &'static str, side: &'static str, r: usize, c: usize, feasible: bool) {
    obs::event(
        name,
        &[
            ("row", obs::FieldValue::U64(r as u64)),
            ("col", obs::FieldValue::U64(c as u64)),
            ("side", obs::FieldValue::Str(side)),
            ("feasible", obs::FieldValue::Bool(feasible)),
        ],
    );
}

/// Leftmost feasible column of row `r`, bracketed from the known
/// feasible `good`: gallop left with doubling steps to find an
/// infeasible cell (seeding from the previous row's endpoint makes the
/// first step land next to the answer in the common case), then bisect.
/// Both sides of the returned boundary end up evaluated.
fn left_end(
    memo: &mut [Option<bool>],
    evals: &mut u64,
    oracle: &mut impl Oracle,
    grid: usize,
    r: usize,
    mut good: usize,
) -> Result<usize, CacError> {
    if good == 0 {
        return Ok(0);
    }
    let mut step = 1usize;
    let mut bad = loop {
        let probe = good.saturating_sub(step);
        let feasible = eval_memo(memo, evals, oracle, grid, r, probe)?;
        step_event("gallop_step", "left", r, probe, feasible);
        if feasible {
            good = probe;
            if good == 0 {
                return Ok(0);
            }
            step = step.saturating_mul(2);
        } else {
            break probe;
        }
    };
    while good - bad > 1 {
        let mid = bad + (good - bad) / 2;
        let feasible = eval_memo(memo, evals, oracle, grid, r, mid)?;
        step_event("bisect_step", "left", r, mid, feasible);
        if feasible {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(good)
}

/// Rightmost feasible column of row `r`, bracketed from the known
/// feasible `good`. The right edge is probed first: on the staircase
/// regions the analysis produces, more `H_S` never hurts the candidate,
/// so the run reaches the edge and this costs one (often memoized)
/// evaluation.
fn right_end(
    memo: &mut [Option<bool>],
    evals: &mut u64,
    oracle: &mut impl Oracle,
    grid: usize,
    r: usize,
    mut good: usize,
) -> Result<usize, CacError> {
    let edge = eval_memo(memo, evals, oracle, grid, r, grid - 1)?;
    step_event("gallop_step", "right", r, grid - 1, edge);
    if edge {
        return Ok(grid - 1);
    }
    let mut bad = grid - 1;
    let mut step = 1usize;
    while bad - good > 1 {
        let probe = (good + step).min(bad - 1);
        let feasible = eval_memo(memo, evals, oracle, grid, r, probe)?;
        step_event("gallop_step", "right", r, probe, feasible);
        if feasible {
            good = probe;
            step = step.saturating_mul(2);
        } else {
            bad = probe;
            break;
        }
    }
    while bad - good > 1 {
        let mid = good + (bad - good) / 2;
        let feasible = eval_memo(memo, evals, oracle, grid, r, mid)?;
        step_event("bisect_step", "right", r, mid, feasible);
        if feasible {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(good)
}

/// Traces the feasible run `[lo, hi)` of every row bottom-up, seeding
/// each row's searches from the previous row's run.
fn trace_frontier(
    memo: &mut [Option<bool>],
    evals: &mut u64,
    oracle: &mut impl Oracle,
    grid: usize,
) -> Result<Vec<(usize, usize)>, CacError> {
    let mut runs = Vec::with_capacity(grid);
    let mut prev: Option<(usize, usize)> = None;
    for r in 0..grid {
        let evals_before = *evals;
        // Pivot discovery: the staircase widens upward, so the previous
        // row's run (left endpoint first — it anchors the cheap gallop)
        // is feasible here too; the right edge is the fallback seed and
        // covers the first nonempty row.
        let mut pivot = None;
        if let Some((plo, phi)) = prev {
            for c in [plo, phi - 1, plo + (phi - plo) / 2] {
                if eval_memo(memo, evals, oracle, grid, r, c)? {
                    pivot = Some(c);
                    break;
                }
            }
        }
        if pivot.is_none() && eval_memo(memo, evals, oracle, grid, r, grid - 1)? {
            pivot = Some(grid - 1);
        }
        let run = match pivot {
            Some(p) => {
                let lo = left_end(memo, evals, oracle, grid, r, p)?;
                let hi = right_end(memo, evals, oracle, grid, r, p)? + 1;
                (lo, hi)
            }
            None => (0, 0),
        };
        obs::event(
            "frontier_row",
            &[
                ("row", obs::FieldValue::U64(r as u64)),
                ("lo", obs::FieldValue::U64(run.0 as u64)),
                ("hi", obs::FieldValue::U64(run.1 as u64)),
                ("evals", obs::FieldValue::U64(*evals - evals_before)),
            ],
        );
        runs.push(run);
        prev = (run.1 > run.0).then_some(run);
    }
    Ok(runs)
}

/// Certifies a trace: reconstructs the map from the runs and accepts it
/// only if (1) every evaluation the trace recorded agrees with the
/// reconstruction — every run boundary is witnessed by evaluations on
/// both sides, so under Theorem 3's single-run rows this pins the whole
/// map — (2) nonempty rows form one contiguous band reaching the top
/// row, and (3) within the band the runs widen monotonically (`lo`
/// never grows, `hi` never shrinks with `H_R`) — the staircase shape
/// the per-row seeding relies on. Note this is deliberately weaker than
/// full grid convexity: sampled maps of the *analysis* can break the
/// diagonal single-run property (the run's left endpoint may jump many
/// columns between adjacent rows at a mux-regime threshold) while every
/// row remains a single run, and only the latter matters for the
/// trace's exactness. Returns the flat map, or `None` to demand the
/// dense fallback.
fn certify(grid: usize, runs: &[(usize, usize)], memo: &[Option<bool>]) -> Option<Vec<bool>> {
    let mut flat = vec![false; grid * grid];
    for (r, &(lo, hi)) in runs.iter().enumerate() {
        flat[r * grid + lo..r * grid + hi].fill(true);
    }
    if memo
        .iter()
        .enumerate()
        .any(|(i, m)| m.is_some_and(|v| v != flat[i]))
    {
        return None;
    }
    if let Some(first) = runs.iter().position(|&(lo, hi)| hi > lo) {
        let band = &runs[first..];
        if band.iter().any(|&(lo, hi)| hi <= lo) {
            return None;
        }
        if band.windows(2).any(|w| w[1].0 > w[0].0 || w[1].1 < w[0].1) {
            return None;
        }
    }
    Some(flat)
}

/// Runs the frontier tracer against `oracle` and certifies the result;
/// on failure, completes the map densely through the same memo (cells
/// already evaluated are not re-evaluated, and a deterministic oracle
/// makes the outcome identical to a pure dense sweep). Returns the flat
/// map, the number of oracle evaluations, and whether it fell back.
fn frontier_map(grid: usize, mut oracle: impl Oracle) -> Result<(Vec<bool>, u64, bool), CacError> {
    let mut memo = vec![None; grid * grid];
    let mut evals = 0u64;
    let runs = trace_frontier(&mut memo, &mut evals, &mut oracle, grid)?;
    if let Some(flat) = certify(grid, &runs, &memo) {
        return Ok((flat, evals, false));
    }
    let mut flat = vec![false; grid * grid];
    for r in 0..grid {
        for c in 0..grid {
            flat[r * grid + c] = eval_memo(&mut memo, &mut evals, &mut oracle, grid, r, c)?;
        }
    }
    Ok((flat, evals, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::HostId;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::{Bits, BitsPerSec};

    fn spec(deadline_ms: f64) -> ConnectionSpec {
        ConnectionSpec {
            source: HostId {
                ring: 0,
                station: 0,
            },
            dest: HostId {
                ring: 1,
                station: 0,
            },
            envelope: Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(2.0),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            ),
            deadline: Seconds::from_millis(deadline_ms),
            class: 0,
        }
    }

    fn map(deadline_ms: f64, grid: usize) -> RegionMap {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        sample_region(
            &net,
            &[],
            &spec(deadline_ms),
            Seconds::from_millis(7.2),
            Seconds::from_millis(7.2),
            grid,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn generous_deadline_has_large_feasible_region() {
        let m = map(150.0, 9);
        assert!(m.any_feasible());
        assert!(m.feasible_fraction() > 0.3, "{}", m.ascii());
        // The top-right corner (max allocations) is feasible.
        assert!(m.get(m.rows() - 1, m.cols() - 1), "{}", m.ascii());
    }

    #[test]
    fn impossible_deadline_has_empty_region() {
        let m = map(1.0, 6);
        assert!(!m.any_feasible());
        assert_eq!(m.feasible_fraction(), 0.0);
    }

    #[test]
    fn region_is_monotone_staircase() {
        // Theorem 3's convexity shows up on the grid as single-run rows,
        // columns and diagonals.
        let m = map(60.0, 9);
        assert!(m.any_feasible());
        assert!(!m.get(0, 0));
        assert_eq!(m.convexity_violations(), 0, "{}", m.ascii());
    }

    #[test]
    fn degenerate_grid_is_an_error_not_a_panic() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        for grid in [0, 1] {
            let r = sample_region(
                &net,
                &[],
                &spec(100.0),
                Seconds::from_millis(7.2),
                Seconds::from_millis(7.2),
                grid,
                &cfg,
            );
            assert!(matches!(r, Err(CacError::InvalidRequest(_))), "grid {grid}");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_map() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        let run = |threads| {
            sample_region_threads(
                &net,
                &[],
                &spec(60.0),
                Seconds::from_millis(7.2),
                Seconds::from_millis(7.2),
                5,
                &cfg,
                threads,
            )
            .unwrap()
        };
        let seq = run(1);
        for threads in [2, 3, 7, 64] {
            let par = run(threads);
            assert_eq!(par.map.cells(), seq.map.cells(), "threads {threads}");
        }
        // The sequential single evaluator reuses everything it can.
        assert!(seq.stats.stage1_hits > 0);
        assert!(seq.stats.mux_hits > 0);
    }

    /// The frontier tracer narrates its work: one `frontier_row` event
    /// per row whose per-row eval counts sum to the sample's total, all
    /// inside a `sample_region_frontier` span.
    #[test]
    fn frontier_emits_row_and_step_events() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        let grid = 7;
        let (sample, trace) = obs::collect(1 << 16, || {
            sample_region_frontier(
                &net,
                &[],
                &spec(60.0),
                Seconds::from_millis(7.2),
                Seconds::from_millis(7.2),
                grid,
                &cfg,
            )
            .unwrap()
        });
        let field = |r: &obs::TraceRecord, key: &str| -> u64 {
            r.fields
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (k, obs::FieldValue::U64(v)) if *k == key => Some(*v),
                    _ => None,
                })
                .expect("u64 field present")
        };
        let rows: Vec<&obs::TraceRecord> = trace
            .records()
            .iter()
            .filter(|r| r.name == "frontier_row")
            .collect();
        assert_eq!(rows.len(), grid);
        assert!(!sample.fell_back);
        assert_eq!(
            rows.iter().map(|r| field(r, "evals")).sum::<u64>(),
            sample.evals
        );
        // Boundary searches leave gallop/bisect breadcrumbs.
        assert!(trace.records().iter().any(|r| r.name == "gallop_step"));
        let span_started = trace
            .records()
            .iter()
            .any(|r| r.kind == obs::RecordKind::SpanStart && r.name == "sample_region_frontier");
        assert!(span_started);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn frontier_matches_dense_and_is_cheaper() {
        let net = HetNetwork::paper_topology();
        let cfg = CacConfig::fast();
        for deadline_ms in [1.0, 60.0, 150.0] {
            let run = |frontier: bool| {
                let f = if frontier {
                    sample_region_frontier
                } else {
                    sample_region_seq_sample
                };
                f(
                    &net,
                    &[],
                    &spec(deadline_ms),
                    Seconds::from_millis(7.2),
                    Seconds::from_millis(7.2),
                    9,
                    &cfg,
                )
                .unwrap()
            };
            let dense = run(false);
            let frontier = run(true);
            assert_eq!(
                frontier.map.cells(),
                dense.map.cells(),
                "deadline {deadline_ms}: {}",
                dense.map.ascii()
            );
            assert!(!frontier.fell_back, "deadline {deadline_ms}");
            assert!(
                frontier.evals < dense.evals,
                "deadline {deadline_ms}: {} !< {}",
                frontier.evals,
                dense.evals
            );
        }
    }

    fn sample_region_seq_sample(
        net: &HetNetwork,
        active: &[PathInput],
        spec: &ConnectionSpec,
        available_s: Seconds,
        available_r: Seconds,
        grid: usize,
        cfg: &CacConfig,
    ) -> Result<RegionSample, CacError> {
        sample_region_threads(net, active, spec, available_s, available_r, grid, cfg, 1)
    }

    /// Oracle over a fixed bit-grid, for exercising the tracer against
    /// shapes the physical analysis never produces.
    fn grid_oracle(cells: Vec<bool>, grid: usize) -> impl Oracle {
        move |r: usize, c: usize| Ok(cells[r * grid + c])
    }

    #[test]
    fn synthetic_staircases_trace_exactly() {
        // Monotone staircases of every flavor, including empty and full.
        let grid = 8;
        let shapes: Vec<Box<dyn Fn(usize, usize) -> bool>> = vec![
            Box::new(|_, _| false),
            Box::new(|_, _| true),
            Box::new(move |r, c| r + c >= grid),
            Box::new(move |r, c| c >= grid.saturating_sub(1 + r / 2)),
            Box::new(move |r, _| r == grid - 1),
            Box::new(move |r, c| r == grid - 1 && c == grid - 1),
        ];
        for (i, shape) in shapes.iter().enumerate() {
            let dense: Vec<bool> = (0..grid * grid)
                .map(|idx| shape(idx / grid, idx % grid))
                .collect();
            let (flat, evals, fell_back) =
                frontier_map(grid, grid_oracle(dense.clone(), grid)).unwrap();
            assert_eq!(flat, dense, "shape {i}");
            assert!(!fell_back, "shape {i}");
            assert!(evals <= (grid * grid) as u64, "shape {i}: {evals}");
        }
    }

    #[test]
    fn non_convex_oracle_falls_back_to_dense() {
        // Two disjoint runs in the bottom row: the trace's probes must
        // witness the violation and the fallback must return the exact
        // dense map, at no more than one evaluation per cell.
        let grid = 8;
        let dense: Vec<bool> = (0..grid * grid)
            .map(|idx| {
                let (r, c) = (idx / grid, idx % grid);
                if r == 0 {
                    c < 2 || c >= grid - 2
                } else {
                    r + c >= grid
                }
            })
            .collect();
        let (flat, evals, fell_back) =
            frontier_map(grid, grid_oracle(dense.clone(), grid)).unwrap();
        assert!(fell_back);
        assert_eq!(flat, dense);
        assert_eq!(evals, (grid * grid) as u64);
    }

    #[test]
    fn shrinking_band_oracle_falls_back() {
        // A row that is nonempty below an empty row breaks the
        // contiguous-band certificate.
        let grid = 6;
        let dense: Vec<bool> = (0..grid * grid)
            .map(|idx| {
                let (r, c) = (idx / grid, idx % grid);
                r == 1 && c >= grid - 2
            })
            .collect();
        let (flat, _, fell_back) = frontier_map(grid, grid_oracle(dense.clone(), grid)).unwrap();
        assert!(fell_back);
        assert_eq!(flat, dense);
    }

    #[test]
    fn ascii_renders_dimensions() {
        let m = map(150.0, 5);
        let art = m.ascii();
        assert!(art.contains('#'));
        assert!(art.lines().count() >= 7);
    }
}
