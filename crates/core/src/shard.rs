//! Ring-partitioned admission state behind a backbone ledger.
//!
//! [`crate::cac::NetworkState`] keeps one flat connection vector and
//! recomputes against all of it; at hundreds of rings and 10⁵ live
//! connections that flat view is the bottleneck — every decision pays
//! O(active) even though a candidate only interacts with the small
//! slice of the network it shares multiplexers with. This module
//! partitions the same state *by source ring* ([`ShardedState`]): each
//! ring shard owns the connections sourced on it, and a shared
//! **backbone ledger** owns the cross-ring coupling — which flows cross
//! which ATM multiplexers — plus a version counter and a footprint log
//! that make optimistic concurrency possible.
//!
//! A decision runs in three steps:
//!
//! 1. **Speculate** ([`ShardedState::speculate`]): extract the
//!    candidate's *dependency closure* — the least set of active
//!    connections containing every flow on the candidate's endpoint
//!    rings and closed under "shares a multiplexer with" — together
//!    with the ledger version it was read at.
//! 2. **Decide** ([`Speculation::state`]): build a scoped
//!    [`NetworkState`] over just that closure and run the ordinary
//!    β-CAC admission on it. Decisions over the closure are
//!    *bit-identical* to decisions over the full state (the §12
//!    argument in `DESIGN.md`): the closure carries every flow that
//!    contributes to any quantity the admission reads, in the same
//!    relative (id) order, so allocation-table sums, multiplexer
//!    aggregates, and existing-flow delay bounds come out to the same
//!    bits, and flows outside the closure are unaffected by the
//!    candidate and already feasible.
//! 3. **Commit** ([`ShardedState::commit_admit`]): re-validate the
//!    speculation against the ledger ([`ShardedState::conflicts`] — any
//!    committed footprint since the speculation's version intersecting
//!    its closure invalidates it) and apply it. Conflicted speculations
//!    are recomputed sequentially by the committer, so the committed
//!    decision stream is always the sequential one.
//!
//! Departures and faults mutate through the same ledger
//! ([`ShardedState::release`], [`ShardedState::set_component_down`]);
//! down-set changes act as a *barrier* (every in-flight speculation
//! conflicts), because component health gates decisions globally.
//!
//! [`ShardedState::cut`] captures the partitioned state as per-shard
//! snapshots plus a consistent ledger cut, and
//! [`ShardedCut::to_snapshot`] merges them into the ordinary
//! [`StateSnapshot`] form — equal, string for string, to the snapshot
//! the flat state would produce.

use crate::cac::{NetworkState, TeardownReport};
use crate::connection::{ActiveConnection, ConnectionId, ConnectionSpec};
use crate::delay::MuxKey;
use crate::error::CacError;
use crate::incremental::hops_for;
use crate::network::{Component, HetNetwork, HostId};
use crate::snapshot::{ConnectionSnapshot, StateSnapshot, SNAPSHOT_VERSION};
use hetnet_fddi::ring::RingConfig;
use hetnet_traffic::units::Seconds;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Footprint-log entries kept before old versions become unverifiable
/// (speculations older than the log window conservatively conflict).
const LOG_WINDOW: usize = 1024;

/// One ring's shard: the connections sourced on that ring, by id.
#[derive(Clone, Debug, Default)]
struct RingShard {
    sourced: BTreeMap<u64, ActiveConnection>,
}

/// A flow's entry in the backbone ledger.
#[derive(Clone, Debug)]
struct FlowEntry {
    source_ring: usize,
    dest_ring: usize,
    hops: Vec<MuxKey>,
}

/// One committed mutation's footprint, for conflict checks.
#[derive(Clone, Debug)]
struct LogEntry {
    version: u64,
    muxes: Vec<MuxKey>,
}

/// The shared, versioned record of cross-ring coupling: which flows
/// cross which multiplexers, plus the commit log speculations validate
/// against.
#[derive(Clone, Debug, Default)]
struct BackboneLedger {
    /// Multiplexer → member flow ids, ascending.
    servers: BTreeMap<MuxKey, Vec<u64>>,
    /// Flow id → its shard and multiplexer footprint.
    flows: BTreeMap<u64, FlowEntry>,
    /// Bumped by every committed mutation.
    version: u64,
    /// Speculations read at a version below this always conflict (set
    /// by down-set changes, which gate decisions globally).
    barrier: u64,
    /// Recent commit footprints, ascending version.
    log: VecDeque<LogEntry>,
    /// Oldest version still verifiable through the log.
    log_floor: u64,
}

impl BackboneLedger {
    fn bump(&mut self, muxes: Vec<MuxKey>) {
        self.version += 1;
        self.log.push_back(LogEntry {
            version: self.version,
            muxes,
        });
        while self.log.len() > LOG_WINDOW {
            let dropped = self.log.pop_front().expect("log non-empty");
            self.log_floor = dropped.version;
        }
    }

    fn raise_barrier(&mut self) {
        self.version += 1;
        self.barrier = self.version;
    }
}

/// The admission state of [`crate::cac::NetworkState`], partitioned by
/// source ring behind a backbone ledger. Holds no decision logic of its
/// own: decisions run on scoped [`NetworkState`]s built from
/// [`Speculation`]s, and this type guarantees that what those scoped
/// states compute is what the flat sequential state would have
/// computed.
#[derive(Clone, Debug)]
pub struct ShardedState {
    net: Arc<HetNetwork>,
    shards: Vec<RingShard>,
    ledger: BackboneLedger,
    next_id: u64,
    down: BTreeSet<Component>,
}

/// A candidate's dependency closure, read at a ledger version: the
/// inputs of one optimistic admission decision.
#[derive(Clone, Debug)]
pub struct Speculation {
    net: Arc<HetNetwork>,
    /// Ledger version the closure was read at.
    pub version: u64,
    /// The id an admission committed from this speculation would get if
    /// no commit intervenes (the committer reassigns on conflict-free
    /// commit anyway; decisions never depend on the candidate's own
    /// id).
    pub next_id: u64,
    connections: Vec<ActiveConnection>,
    down: BTreeSet<Component>,
    muxes: BTreeSet<MuxKey>,
}

/// An opaque multiplexer footprint, for conflict checks across crate
/// boundaries (multiplexer keys are internal to the delay analysis).
#[derive(Clone, Debug)]
pub struct Footprint(BTreeSet<MuxKey>);

impl Speculation {
    /// Builds the scoped [`NetworkState`] this speculation decides on:
    /// exactly the closure's connections over the shared topology, with
    /// the down set and id counter carried from the read.
    ///
    /// # Errors
    ///
    /// Propagates [`CacError::SnapshotMismatch`] from
    /// [`NetworkState::scoped`] (impossible unless the partitioned
    /// state is corrupt).
    pub fn state(&self) -> Result<NetworkState, CacError> {
        NetworkState::scoped(
            Arc::clone(&self.net),
            self.connections.clone(),
            self.down.clone(),
            self.next_id,
        )
    }

    /// Number of connections in the closure (what the decision's cost
    /// scales with, instead of the global active count).
    #[must_use]
    pub fn closure_len(&self) -> usize {
        self.connections.len()
    }

    /// The multiplexer footprint commits are validated against.
    #[must_use]
    pub fn footprint(&self) -> Footprint {
        Footprint(self.muxes.clone())
    }
}

impl ShardedState {
    /// An empty partitioned state over a shared topology.
    #[must_use]
    pub fn new(net: Arc<HetNetwork>) -> Self {
        let shards = vec![RingShard::default(); net.rings().len()];
        Self {
            net,
            shards,
            ledger: BackboneLedger::default(),
            next_id: 0,
            down: BTreeSet::new(),
        }
    }

    /// The shared topology handle.
    #[must_use]
    pub fn net(&self) -> &Arc<HetNetwork> {
        &self.net
    }

    /// Current ledger version (bumped by every committed mutation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.ledger.version
    }

    /// The next connection id a commit would assign.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Number of active connections across all shards.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.ledger.flows.len()
    }

    /// The components currently marked down, in sorted order.
    #[must_use]
    pub fn down_components(&self) -> Vec<Component> {
        self.down.iter().copied().collect()
    }

    /// Iterates every active connection in id (= admission) order,
    /// crossing shards through the ledger's flow index.
    pub fn active_iter(&self) -> impl Iterator<Item = &ActiveConnection> {
        self.ledger.flows.iter().map(|(id, flow)| {
            self.shards[flow.source_ring]
                .sourced
                .get(id)
                .expect("ledger flow present in its source shard")
        })
    }

    /// Extracts the dependency closure of a `source → dest` candidate:
    /// starting from the candidate's own multiplexers *plus* both
    /// endpoint rings' uplink and downlink multiplexers (whose member
    /// flows share the endpoint rings' allocation tables with the
    /// candidate), repeatedly adds every member flow of every reached
    /// multiplexer and every multiplexer of every added flow, to a
    /// fixpoint. The result is returned in id order with the ledger
    /// version it was read at.
    ///
    /// # Errors
    ///
    /// Propagates routing errors for hosts whose rings are out of range
    /// or unrouted (the scoped admission would reject such a spec
    /// anyway).
    pub fn speculate(&self, source: HostId, dest: HostId) -> Result<Speculation, CacError> {
        let mut muxes: BTreeSet<MuxKey> = hops_for(&self.net, source, dest)?.into_iter().collect();
        muxes.insert(MuxKey::Uplink(source.ring));
        muxes.insert(MuxKey::Downlink(source.ring));
        muxes.insert(MuxKey::Uplink(dest.ring));
        muxes.insert(MuxKey::Downlink(dest.ring));
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        let mut frontier: Vec<MuxKey> = muxes.iter().copied().collect();
        while let Some(key) = frontier.pop() {
            let Some(members) = self.ledger.servers.get(&key) else {
                continue;
            };
            for &id in members {
                if !ids.insert(id) {
                    continue;
                }
                let flow = self.ledger.flows.get(&id).expect("member flow tracked");
                for &hop in &flow.hops {
                    if muxes.insert(hop) {
                        frontier.push(hop);
                    }
                }
            }
        }
        let connections = ids
            .iter()
            .map(|id| {
                let ring = self.ledger.flows[id].source_ring;
                self.shards[ring].sourced[id].clone()
            })
            .collect();
        Ok(Speculation {
            net: Arc::clone(&self.net),
            version: self.ledger.version,
            next_id: self.next_id,
            connections,
            down: self.down.clone(),
            muxes,
        })
    }

    /// Whether a speculation read at `version` with this footprint has
    /// been invalidated: a barrier (down-set change) was raised since,
    /// the version has aged out of the footprint log, or some committed
    /// mutation since touched a multiplexer in the footprint.
    #[must_use]
    pub fn conflicts(&self, version: u64, footprint: &Footprint) -> bool {
        let ledger = &self.ledger;
        if version < ledger.barrier || version < ledger.log_floor {
            return true;
        }
        ledger
            .log
            .iter()
            .rev()
            .take_while(|e| e.version > version)
            .any(|e| e.muxes.iter().any(|m| footprint.0.contains(m)))
    }

    /// Commits an admitted decision: assigns the id the sequential
    /// state would assign, stores the connection in its source-ring
    /// shard, registers its multiplexer memberships in the ledger, and
    /// logs the footprint for conflict checks.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (impossible for a spec that was just
    /// decided over the same topology).
    pub fn commit_admit(
        &mut self,
        spec: &ConnectionSpec,
        h_s: hetnet_fddi::ring::SyncBandwidth,
        h_r: hetnet_fddi::ring::SyncBandwidth,
        delay_bound: Seconds,
    ) -> Result<ConnectionId, CacError> {
        let id = ConnectionId(self.next_id);
        self.next_id += 1;
        let hops = hops_for(&self.net, spec.source, spec.dest)?;
        for key in &hops {
            let members = self.ledger.servers.entry(*key).or_default();
            let pos = members.partition_point(|&m| m < id.0);
            members.insert(pos, id.0);
        }
        self.ledger.flows.insert(
            id.0,
            FlowEntry {
                source_ring: spec.source.ring,
                dest_ring: spec.dest.ring,
                hops: hops.clone(),
            },
        );
        self.shards[spec.source.ring].sourced.insert(
            id.0,
            ActiveConnection {
                id,
                spec: spec.clone(),
                h_s,
                h_r,
                delay_bound,
            },
        );
        self.ledger.bump(hops);
        Ok(id)
    }

    /// Tears down an active connection, removing it from its shard and
    /// the ledger and logging its footprint. Mirrors
    /// [`NetworkState::release`].
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownConnection`] if `id` is not active.
    pub fn release(&mut self, id: ConnectionId) -> Result<ActiveConnection, CacError> {
        let flow = self
            .ledger
            .flows
            .remove(&id.0)
            .ok_or(CacError::UnknownConnection(id))?;
        let conn = self.shards[flow.source_ring]
            .sourced
            .remove(&id.0)
            .expect("shard tracks ledgered flow");
        for key in &flow.hops {
            if let Some(members) = self.ledger.servers.get_mut(key) {
                members.retain(|&m| m != id.0);
                if members.is_empty() {
                    self.ledger.servers.remove(key);
                }
            }
        }
        self.ledger.bump(flow.hops);
        Ok(conn)
    }

    /// Marks a component as failed, tearing down every connection
    /// crossing it (in id order, as the flat state does) and raising
    /// the conflict barrier: down-set changes gate every decision, so
    /// all in-flight speculations are invalidated. Mirrors
    /// [`NetworkState::set_component_down`].
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] for a component outside
    /// this topology.
    pub fn set_component_down(&mut self, component: Component) -> Result<TeardownReport, CacError> {
        self.validate_component(component)?;
        let newly = self.down.insert(component);
        let mut report = TeardownReport {
            component,
            already_down: !newly,
            torn: Vec::new(),
            reclaimed_s: Seconds::ZERO,
            reclaimed_r: Seconds::ZERO,
        };
        if newly {
            let victims: Vec<ConnectionId> = self
                .ledger
                .flows
                .iter()
                .filter(|(_, f)| match component {
                    Component::Ring(r) | Component::IfDev(r) => {
                        f.source_ring == r.0 || f.dest_ring == r.0
                    }
                    Component::Link(l) => f.hops.contains(&MuxKey::Backbone(l.0)),
                })
                .map(|(&id, _)| ConnectionId(id))
                .collect();
            for id in victims {
                let conn = self.release(id).expect("victim is active");
                report.reclaimed_s += conn.h_s.per_rotation();
                report.reclaimed_r += conn.h_r.per_rotation();
                report.torn.push(conn);
            }
            self.ledger.raise_barrier();
        }
        Ok(report)
    }

    /// Restores a failed component, raising the conflict barrier (the
    /// repaired component may flip in-flight `ComponentUnavailable`
    /// outcomes). Returns whether it was down. Mirrors
    /// [`NetworkState::set_component_up`].
    ///
    /// # Errors
    ///
    /// Returns [`CacError::InvalidNetwork`] for a component outside
    /// this topology.
    pub fn set_component_up(&mut self, component: Component) -> Result<bool, CacError> {
        self.validate_component(component)?;
        let was_down = self.down.remove(&component);
        if was_down {
            self.ledger.raise_barrier();
        }
        Ok(was_down)
    }

    fn validate_component(&self, component: Component) -> Result<(), CacError> {
        let ok = match component {
            Component::Ring(r) | Component::IfDev(r) => r.0 < self.net.rings().len(),
            Component::Link(l) => l.0 < self.net.backbone().link_count(),
        };
        if ok {
            Ok(())
        } else {
            Err(CacError::InvalidNetwork(format!(
                "unknown component {component}"
            )))
        }
    }

    /// The merged flat snapshot of the partitioned state — equal,
    /// field for field, to what [`NetworkState::snapshot`] produces
    /// after the same committed decision sequence. `clock` and
    /// `decision_seq` come from the caller (the engine owns them).
    #[must_use]
    pub fn snapshot(&self, clock: Seconds, decision_seq: u64) -> StateSnapshot {
        StateSnapshot {
            version: SNAPSHOT_VERSION,
            topology: self.net.summary(),
            rings: self.net.rings().to_vec(),
            connections: self
                .ledger
                .flows
                .iter()
                .map(|(id, f)| {
                    let c = &self.shards[f.source_ring].sourced[id];
                    ConnectionSnapshot {
                        id: c.id,
                        source: c.spec.source,
                        dest: c.spec.dest,
                        envelope: Arc::clone(&c.spec.envelope),
                        deadline: c.spec.deadline,
                        class: c.spec.class,
                        h_s: c.h_s,
                        h_r: c.h_r,
                        delay_bound: c.delay_bound,
                    }
                })
                .collect(),
            down: self.down.iter().copied().collect(),
            next_id: self.next_id,
            clock,
            decision_seq,
        }
    }

    /// Rebuilds a partitioned state from a flat snapshot (shards and
    /// ledger are derived data; the snapshot stays the one durable
    /// format).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::SnapshotMismatch`] for a wrong version or
    /// topology, or ids out of order / not below `next_id`.
    pub fn from_snapshot(net: Arc<HetNetwork>, snap: &StateSnapshot) -> Result<Self, CacError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(CacError::SnapshotMismatch(format!(
                "snapshot version {} != supported {SNAPSHOT_VERSION}",
                snap.version
            )));
        }
        if snap.topology != net.summary() {
            return Err(CacError::SnapshotMismatch(format!(
                "snapshot topology ({}) != this network ({})",
                snap.topology,
                net.summary()
            )));
        }
        // Adopt the snapshot's ring parameters, as `NetworkState::restore`
        // does: a cut taken after a live reconfiguration rebuilds onto the
        // retuned TTRT/overhead, not the base topology's.
        let net = if snap.rings.as_slice() == net.rings() {
            net
        } else {
            Arc::new(
                net.as_ref()
                    .with_ring_configs(snap.rings.clone())
                    .map_err(|e| {
                        CacError::SnapshotMismatch(format!("snapshot ring parameters: {e}"))
                    })?,
            )
        };
        let mut state = Self::new(net);
        let mut prev: Option<u64> = None;
        for c in &snap.connections {
            if c.id.0 >= snap.next_id || prev.is_some_and(|p| p >= c.id.0) {
                return Err(CacError::SnapshotMismatch(format!(
                    "snapshot ids not strictly ascending below next_id {} at {}",
                    snap.next_id, c.id
                )));
            }
            prev = Some(c.id.0);
            state.next_id = c.id.0;
            state.commit_admit(&c.spec(), c.h_s, c.h_r, c.delay_bound)?;
        }
        state.next_id = snap.next_id;
        state.down = snap.down.iter().copied().collect();
        // Restored state starts a fresh optimistic epoch: raise the
        // barrier so no speculation from before the restore can commit.
        state.ledger.raise_barrier();
        Ok(state)
    }

    /// Captures the partitioned state as per-shard snapshots plus a
    /// consistent ledger cut (taken at one version, under the
    /// committer's exclusive access — in-flight speculations don't
    /// touch it, so the cut is a consistent point of the committed
    /// history even while workers speculate).
    #[must_use]
    pub fn cut(&self, clock: Seconds, decision_seq: u64) -> ShardedCut {
        ShardedCut {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(ring, shard)| ShardCut {
                    ring,
                    connections: shard
                        .sourced
                        .values()
                        .map(|c| ConnectionSnapshot {
                            id: c.id,
                            source: c.spec.source,
                            dest: c.spec.dest,
                            envelope: Arc::clone(&c.spec.envelope),
                            deadline: c.spec.deadline,
                            class: c.spec.class,
                            h_s: c.h_s,
                            h_r: c.h_r,
                            delay_bound: c.delay_bound,
                        })
                        .collect(),
                })
                .collect(),
            ledger: LedgerCut {
                version: self.ledger.version,
                next_id: self.next_id,
                down: self.down.iter().copied().collect(),
                clock,
                decision_seq,
                topology: self.net.summary(),
                rings: self.net.rings().to_vec(),
            },
        }
    }

    /// Rebuilds a partitioned state from a per-shard cut, via the flat
    /// snapshot (which re-derives the ledger deterministically).
    ///
    /// # Errors
    ///
    /// As for [`ShardedState::from_snapshot`], plus a mismatch if a
    /// connection sits in the wrong shard.
    pub fn from_cut(net: Arc<HetNetwork>, cut: &ShardedCut) -> Result<Self, CacError> {
        for shard in &cut.shards {
            if let Some(c) = shard
                .connections
                .iter()
                .find(|c| c.source.ring != shard.ring)
            {
                return Err(CacError::SnapshotMismatch(format!(
                    "{} sourced on ring {} filed under shard {}",
                    c.id, c.source.ring, shard.ring
                )));
            }
        }
        Self::from_snapshot(net, &cut.to_snapshot())
    }
}

/// One ring shard's capture: the connections sourced on that ring, in
/// id order.
#[derive(Clone, Debug)]
pub struct ShardCut {
    /// The ring this shard owns.
    pub ring: usize,
    /// Its connections, ascending id.
    pub connections: Vec<ConnectionSnapshot>,
}

/// The backbone ledger's portion of a cut: the version the cut was
/// taken at and everything global that isn't per-shard.
#[derive(Clone, Debug)]
pub struct LedgerCut {
    /// Ledger version at the cut.
    pub version: u64,
    /// The next connection id.
    pub next_id: u64,
    /// Components down at the cut, sorted.
    pub down: Vec<Component>,
    /// The engine's logical clock.
    pub clock: Seconds,
    /// Completed decisions so far.
    pub decision_seq: u64,
    /// Topology the cut was taken from.
    pub topology: crate::network::TopologySummary,
    /// Ring parameters at the cut (carried so a cut taken after a live
    /// reconfiguration merges back into a snapshot that restores onto
    /// the retuned rings).
    pub rings: Vec<RingConfig>,
}

/// A consistent capture of a [`ShardedState`]: per-shard snapshots plus
/// the ledger cut binding them to one version.
#[derive(Clone, Debug)]
pub struct ShardedCut {
    /// One entry per ring, in ring order.
    pub shards: Vec<ShardCut>,
    /// The ledger's global fields.
    pub ledger: LedgerCut,
}

impl ShardedCut {
    /// Merges the per-shard captures into the flat [`StateSnapshot`]
    /// form — a k-way merge by id, which is admission order.
    #[must_use]
    pub fn to_snapshot(&self) -> StateSnapshot {
        let mut connections: Vec<ConnectionSnapshot> = self
            .shards
            .iter()
            .flat_map(|s| s.connections.iter().cloned())
            .collect();
        connections.sort_by_key(|c| c.id.0);
        StateSnapshot {
            version: SNAPSHOT_VERSION,
            topology: self.ledger.topology,
            rings: self.ledger.rings.clone(),
            connections,
            down: self.ledger.down.clone(),
            next_id: self.ledger.next_id,
            clock: self.ledger.clock,
            decision_seq: self.ledger.decision_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cac::{AdmissionOptions, CacConfig, Decision};
    use crate::network::RingId;
    use hetnet_traffic::models::ConstantRateEnvelope;
    use hetnet_traffic::units::BitsPerSec;

    fn spec(source: (usize, usize), dest: (usize, usize), mbps: f64) -> ConnectionSpec {
        ConnectionSpec::builder()
            .source(source)
            .dest(dest)
            .envelope(Arc::new(ConstantRateEnvelope::new(BitsPerSec::from_mbps(
                mbps,
            ))))
            .deadline(Seconds::from_millis(80.0))
            .build()
            .unwrap()
    }

    /// Admits `specs` in order through both the flat state and the
    /// speculate/decide/commit path, asserting every decision matches
    /// bitwise, and returns both ending states.
    fn run_both(
        net: HetNetwork,
        specs: &[ConnectionSpec],
    ) -> (NetworkState, ShardedState, Vec<Decision>) {
        let mut flat = NetworkState::new(net);
        let shared = Arc::clone(flat.shared_network());
        let mut sharded = ShardedState::new(shared);
        let opts = AdmissionOptions::beta_search(CacConfig::default());
        let mut decisions = Vec::new();
        for s in specs {
            let flat_decision = flat.admit(s.clone(), &opts).unwrap();
            let spec_view = sharded.speculate(s.source, s.dest).unwrap();
            let mut scoped = spec_view.state().unwrap();
            let scoped_decision = scoped.admit(s.clone(), &opts).unwrap();
            match (&flat_decision, &scoped_decision) {
                (
                    Decision::Admitted {
                        id: fid,
                        h_s: fs,
                        h_r: fr,
                        delay_bound: fb,
                    },
                    Decision::Admitted {
                        id: sid,
                        h_s: ss,
                        h_r: sr,
                        delay_bound: sb,
                    },
                ) => {
                    assert_eq!(fid, sid);
                    assert_eq!(
                        fs.per_rotation().value().to_bits(),
                        ss.per_rotation().value().to_bits()
                    );
                    assert_eq!(
                        fr.per_rotation().value().to_bits(),
                        sr.per_rotation().value().to_bits()
                    );
                    assert_eq!(fb.value().to_bits(), sb.value().to_bits());
                    sharded.commit_admit(s, *ss, *sr, *sb).unwrap();
                }
                (Decision::Rejected(f), Decision::Rejected(g)) => {
                    assert_eq!(f.to_string(), g.to_string());
                }
                other => panic!("decisions diverge: {other:?}"),
            }
            decisions.push(flat_decision);
        }
        (flat, sharded, decisions)
    }

    #[test]
    fn scoped_decisions_match_flat_state_bitwise() {
        let net = HetNetwork::paper_topology();
        let rings = net.rings().len();
        let mut specs = Vec::new();
        for i in 0..24 {
            let s = i % rings;
            let d = (i + 1 + i / rings) % rings;
            if s == d {
                continue;
            }
            specs.push(spec(
                (s, i % 4),
                (d, (i + 2) % 4),
                6.0 + (i % 5) as f64 * 3.0,
            ));
        }
        let (flat, sharded, decisions) = run_both(net, &specs);
        assert!(decisions.iter().any(Decision::is_admitted));
        let seq = flat.decisions();
        assert_eq!(
            flat.snapshot().to_json(),
            sharded.snapshot(flat.clock(), seq).to_json(),
            "committed sharded state must merge to the flat snapshot"
        );
    }

    #[test]
    fn closure_excludes_unrelated_ring_pairs() {
        // grid(4, ..) routes 0↔1 and 2↔3 over disjoint links, so the
        // two pairs share no multiplexer and each closure sees only its
        // own pair's flows.
        let net = HetNetwork::grid(4, 4);
        let mut sharded = ShardedState::new(Arc::new(net));
        for (s, d) in [(0usize, 1usize), (2, 3), (0, 1), (3, 2)] {
            let sp = spec((s, 0), (d, 1), 5.0);
            sharded
                .commit_admit(&sp, sync(0.5), sync(0.5), Seconds::from_millis(10.0))
                .unwrap();
        }
        let view = sharded
            .speculate(
                HostId {
                    ring: 0,
                    station: 2,
                },
                HostId {
                    ring: 1,
                    station: 3,
                },
            )
            .unwrap();
        assert_eq!(view.closure_len(), 2, "only the 0↔1 flows are dependencies");
        let all = sharded
            .speculate(
                HostId {
                    ring: 2,
                    station: 2,
                },
                HostId {
                    ring: 3,
                    station: 3,
                },
            )
            .unwrap();
        assert_eq!(all.closure_len(), 2, "only the 2↔3 flows are dependencies");
    }

    fn sync(ms: f64) -> hetnet_fddi::ring::SyncBandwidth {
        hetnet_fddi::ring::SyncBandwidth::new(Seconds::from_millis(ms))
    }

    #[test]
    fn conflicts_track_footprint_intersection_and_barriers() {
        let net = HetNetwork::grid(4, 4);
        let mut sharded = ShardedState::new(Arc::new(net));
        let view = sharded
            .speculate(
                HostId {
                    ring: 0,
                    station: 0,
                },
                HostId {
                    ring: 1,
                    station: 0,
                },
            )
            .unwrap();
        let fp = view.footprint();
        assert!(
            !sharded.conflicts(view.version, &fp),
            "nothing committed yet"
        );

        // A disjoint commit (2→3) does not invalidate a 0→1 speculation.
        sharded
            .commit_admit(
                &spec((2, 0), (3, 0), 5.0),
                sync(0.4),
                sync(0.4),
                Seconds::from_millis(9.0),
            )
            .unwrap();
        assert!(!sharded.conflicts(view.version, &fp));

        // An overlapping commit (0→1) does.
        sharded
            .commit_admit(
                &spec((0, 1), (1, 1), 5.0),
                sync(0.4),
                sync(0.4),
                Seconds::from_millis(9.0),
            )
            .unwrap();
        assert!(sharded.conflicts(view.version, &fp));

        // Down-set changes are a barrier: every older speculation dies.
        let fresh = sharded
            .speculate(
                HostId {
                    ring: 2,
                    station: 1,
                },
                HostId {
                    ring: 3,
                    station: 1,
                },
            )
            .unwrap();
        let fresh_fp = fresh.footprint();
        assert!(!sharded.conflicts(fresh.version, &fresh_fp));
        sharded
            .set_component_down(Component::Ring(RingId(0)))
            .unwrap();
        assert!(sharded.conflicts(fresh.version, &fresh_fp));
    }

    #[test]
    fn release_and_teardown_mirror_the_flat_state() {
        let net = HetNetwork::paper_topology();
        let specs: Vec<ConnectionSpec> = (0..8)
            .map(|i| spec((i % 3, i % 3), ((i + 1) % 3, (i + 2) % 3), 8.0))
            .collect();
        let (mut flat, mut sharded, decisions) = run_both(net, &specs);
        let admitted: Vec<ConnectionId> = decisions
            .iter()
            .filter_map(|d| match d {
                Decision::Admitted { id, .. } => Some(*id),
                Decision::Rejected(_) => None,
            })
            .collect();
        assert!(admitted.len() >= 3, "need a few admissions: {decisions:?}");

        flat.release(admitted[0]).unwrap();
        sharded.release(admitted[0]).unwrap();
        assert!(
            sharded.release(admitted[0]).is_err(),
            "double release errors"
        );

        let fr = flat.set_component_down(Component::Ring(RingId(1))).unwrap();
        let sr = sharded
            .set_component_down(Component::Ring(RingId(1)))
            .unwrap();
        assert_eq!(fr.already_down, sr.already_down);
        assert_eq!(
            fr.torn.iter().map(|c| c.id).collect::<Vec<_>>(),
            sr.torn.iter().map(|c| c.id).collect::<Vec<_>>()
        );
        assert_eq!(
            fr.reclaimed_s.value().to_bits(),
            sr.reclaimed_s.value().to_bits()
        );
        assert_eq!(
            fr.reclaimed_r.value().to_bits(),
            sr.reclaimed_r.value().to_bits()
        );

        flat.set_component_up(Component::Ring(RingId(1))).unwrap();
        sharded
            .set_component_up(Component::Ring(RingId(1)))
            .unwrap();
        assert_eq!(
            flat.snapshot().to_json(),
            sharded.snapshot(flat.clock(), flat.decisions()).to_json()
        );
    }

    #[test]
    fn cut_round_trips_through_per_shard_snapshots() {
        let net = HetNetwork::grid(6, 3);
        let mut sharded = ShardedState::new(Arc::new(net));
        for (s, d) in [(0usize, 1usize), (2, 3), (4, 5), (1, 0), (3, 4)] {
            let sp = spec((s, 0), (d, 1), 4.0);
            sharded
                .commit_admit(&sp, sync(0.3), sync(0.3), Seconds::from_millis(12.0))
                .unwrap();
        }
        sharded
            .set_component_down(Component::Ring(RingId(4)))
            .unwrap();
        let cut = sharded.cut(Seconds::from_millis(5.0), 7);
        assert_eq!(cut.shards.len(), 6);
        let restored = ShardedState::from_cut(Arc::clone(sharded.net()), &cut).unwrap();
        assert_eq!(
            sharded.snapshot(Seconds::from_millis(5.0), 7).to_json(),
            restored.snapshot(Seconds::from_millis(5.0), 7).to_json()
        );
        assert_eq!(restored.next_id(), sharded.next_id());
        // The restored ledger starts a new epoch: pre-cut speculations
        // cannot commit into it.
        assert!(restored.version() > 0);
    }
}
