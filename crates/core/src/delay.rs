//! End-to-end worst-case delay of connections in the heterogeneous
//! network — the decomposition analysis of §4, eq. 7:
//!
//! `d^wc = d^wc_FDDI_S + d^wc_ID_S + d^wc_ATM + d^wc_ID_R + d^wc_FDDI_R`
//!
//! Connections couple at the shared FIFO multiplexers of the backbone:
//! a connection's envelope at a port depends on the delays at its
//! *earlier* ports, so ports are resolved in dependency order (the
//! access/backbone/access layering makes the dependency graph acyclic
//! for minimum-hop routes).
//!
//! The CAC's binary searches evaluate the same connection set dozens of
//! times while only the candidate's allocation changes, so the
//! [`Evaluator`] caches two stages of the work:
//!
//! * **Stage 1** (per connection): source-MAC analysis + segmentation +
//!   flattening — expensive, allocation-dependent, but independent of
//!   cross traffic. Keyed by (envelope identity, ring, `H_S`).
//! * **Stage 2** (per multiplexer): the aggregate FIFO analysis of one
//!   port, keyed by the port plus the exact *member set* — each
//!   member's wire-envelope identity and the chain of (delay, rate)
//!   transforms its envelope accumulated on earlier hops. During a line
//!   search only the muxes the candidate traverses (and their
//!   downstream dependents) change; every background-only mux is
//!   analyzed once per admission request and then served from cache.
//! * **Stage 3** (per receive side): reassembly plus the destination
//!   ring's MAC analysis, keyed by the arrived flow's interned
//!   signature, the frame size, the destination ring, and `H_R`. A
//!   connection whose arrived envelope is unchanged (every mux on its
//!   path hit) skips the second busy-period search entirely.
//!
//! Cache hits return the identical reports the miss path would compute,
//! so cached and uncached evaluations are bit-identical. [`CacheStats`]
//! exposes hit/miss counters for benchmarks and observability.
//!
//! Two further mechanisms keep the hot path cheap without changing any
//! result:
//!
//! * **Scratch buffers.** Per-evaluation working state (stage-1 results,
//!   hop tables, the multiplexer worklist) lives in reusable buffers
//!   inside the [`Evaluator`], so a warm evaluator resolves a candidate
//!   without heap allocation; flow identities are interned to small
//!   integer ids ([`EvalCache`]) so stage-2 cache probes hash a slice of
//!   `u32`s instead of cloning envelope-chain descriptions.
//! * **Detachable caches.** Both caches (and the interner) live in an
//!   [`EvalCache`] that can be taken out of one evaluator
//!   ([`Evaluator::into_cache`]) and handed to the next
//!   ([`Evaluator::with_cache`]), which lets an admission engine keep
//!   background analyses warm across requests
//!   (see `NetworkState::persist_eval_cache`).
//!
//! The evaluator also offers a candidate-only mode that skips the
//! receive-side analysis of existing connections; the paper's
//! monotonicity argument (existing delays are nondecreasing in the
//! newcomer's allocation, so checking them at the maximum suffices)
//! makes that sound.

use crate::error::CacError;
use crate::network::{HetNetwork, HostId};
use hetnet_atm::affine::AffineBound;
use hetnet_atm::sched::{ClassedFlow, SchedReport, Scheduler, SchedulerAnalysis};
use hetnet_atm::{AtmError, LinkConfig};
use hetnet_fddi::mac::{analyze_fddi_mac, DelayOutcome};
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_fddi::{frames, FddiError};
use hetnet_ifdev::{reassemble_envelope, segment_envelope};
use hetnet_obs as obs;
use hetnet_traffic::analysis::AnalysisConfig;
use hetnet_traffic::combinators::Sampled;
use hetnet_traffic::envelope::{Envelope, SharedEnvelope};
use hetnet_traffic::units::{Bits, Seconds};
use std::collections::HashMap;
use std::sync::Arc;

/// Tuning for the end-to-end evaluation.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Server-analysis knobs.
    pub analysis: AnalysisConfig,
    /// Horizon over which deep envelope chains are flattened into lookup
    /// tables before entering multiplexer analyses. Must comfortably
    /// exceed the longest busy period in the network.
    pub flatten_horizon: Seconds,
    /// Guard subdivisions used when flattening.
    pub flatten_subdivisions: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            analysis: AnalysisConfig::default(),
            flatten_horizon: Seconds::new(1.0),
            flatten_subdivisions: 2,
        }
    }
}

impl EvalConfig {
    /// A cheaper configuration for large simulation campaigns: fewer
    /// guard points and a tighter flattening horizon. Bounds remain
    /// bounds; they are just a little less tight.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            analysis: AnalysisConfig {
                guard_subdivisions: 1,
                ..AnalysisConfig::default()
            },
            flatten_horizon: Seconds::new(0.6),
            flatten_subdivisions: 1,
        }
    }
}

/// One connection (existing or candidate) with its allocations.
#[derive(Clone, Debug)]
pub struct PathInput {
    /// Sending host.
    pub source: HostId,
    /// Receiving host.
    pub dest: HostId,
    /// Source traffic envelope at the MAC entrance.
    pub envelope: SharedEnvelope,
    /// Synchronous allocation on the source ring.
    pub h_s: SyncBandwidth,
    /// Synchronous allocation on the destination ring.
    pub h_r: SyncBandwidth,
    /// Traffic class at the backbone scheduler (ignored under FIFO).
    pub class: u8,
}

/// Per-connection worst-case delay decomposition (eq. 7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathReport {
    /// `d^wc_FDDI_S`: source MAC delay χ_S plus ring propagation.
    pub fddi_s: Seconds,
    /// `d^wc_ID_S`: sender-side constant stages plus output-port
    /// queueing.
    pub id_s: Seconds,
    /// `d^wc_ATM`: backbone links (queueing, propagation, switching) up
    /// to and including the egress port toward the receiving device.
    pub atm: Seconds,
    /// `d^wc_ID_R`: receiver-side constant stages.
    pub id_r: Seconds,
    /// `d^wc_FDDI_R`: the device's MAC delay χ_R on the destination ring
    /// plus ring propagation.
    pub fddi_r: Seconds,
    /// The end-to-end bound (the sum of the five terms).
    pub total: Seconds,
    /// Transmit buffer required at the source MAC (Theorem 1.2).
    pub buffer_mac_s: Bits,
    /// Buffer required at the receiving device's MAC.
    pub buffer_mac_r: Bits,
}

/// The outcome of evaluating a set of connections at given allocations.
#[derive(Clone, Debug)]
pub enum EvalOutcome {
    /// Every server is stable; per-connection reports in input order.
    Feasible(Vec<PathReport>),
    /// Some server is unstable or unbounded at these allocations (the
    /// CAC treats this as "delay exceeds every deadline").
    Infeasible(String),
}

impl EvalOutcome {
    /// The reports, if feasible.
    #[must_use]
    pub fn feasible(self) -> Option<Vec<PathReport>> {
        match self {
            Self::Feasible(r) => Some(r),
            Self::Infeasible(_) => None,
        }
    }
}

/// Result of a candidate-only evaluation: the last path's full report
/// and the queueing-delay signature of every multiplexer (used by the
/// CAC's eq.-31/32 equality test).
#[derive(Clone, Debug)]
pub enum CandidateOutcome {
    /// All touched servers are stable.
    Feasible {
        /// Report for the candidate (the last input path).
        candidate: PathReport,
        /// Queueing delays of all multiplexers, ordered by an internal
        /// canonical key; signatures from evaluations over the *same
        /// path set* are comparable element-wise.
        mux_delays: Vec<Seconds>,
    },
    /// Some server is unstable at these allocations.
    Infeasible(String),
}

/// Result of a screened evaluation: existing paths are only checked
/// against their deadlines — exactly when cached, via the monotone
/// screening bound otherwise — while the candidate (the last path)
/// always gets a dense, exact report. The accept/reject outcome is
/// identical to a dense evaluation's in every case.
#[derive(Clone, Debug)]
pub enum ScreenedOutcome {
    /// All servers stable and every existing deadline holds.
    Feasible {
        /// Report for the candidate (the last input path).
        candidate: PathReport,
    },
    /// Some server is unstable or unbounded at these allocations.
    Infeasible(String),
    /// An existing connection's deadline is violated.
    DeadlineMiss {
        /// Index of the first path (in input order) whose deadline fails.
        index: usize,
        /// Its exact end-to-end bound.
        total: Seconds,
    },
}

/// Outcome of one existing-path deadline check.
#[derive(Clone, Copy, Debug)]
enum DeadlineCheck {
    Pass,
    Miss { total: Seconds },
}

/// Receive-independent delay terms of one path, read off the resolved
/// scratch (every term of the end-to-end total except `fddi_r`).
#[derive(Clone, Copy, Debug)]
struct FixedParts {
    fddi_s: Seconds,
    id_s: Seconds,
    atm: Seconds,
    id_r: Seconds,
    buffer_s: Bits,
    frame_size: Bits,
}

impl FixedParts {
    fn sum(&self) -> Seconds {
        self.fddi_s + self.id_s + self.atm + self.id_r
    }
}

/// Which multiplexer a hop refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum MuxKey {
    /// The sender-side device's output port onto its access link.
    Uplink(usize),
    /// A backbone link's output port.
    Backbone(usize),
    /// The egress switch's port onto the access link toward a device.
    Downlink(usize),
}

impl MuxKey {
    /// `(kind, index)` as stable trace labels.
    pub(crate) fn parts(self) -> (&'static str, usize) {
        match self {
            Self::Uplink(i) => ("uplink", i),
            Self::Backbone(i) => ("backbone", i),
            Self::Downlink(i) => ("downlink", i),
        }
    }
}

/// Cached sender-side analysis of one (envelope, ring, H_S) triple.
#[derive(Clone, Debug)]
enum Stage1 {
    Ready {
        chi_s: Seconds,
        buffer: Bits,
        frame_size: Bits,
        wire: Arc<Sampled>,
        /// Tightest affine `(σ, ρ)` dominating `wire`'s sample table —
        /// derived once per stage-1 computation for the admission fast
        /// path, valid on the flattening horizon.
        wire_affine: AffineBound,
    },
    Infeasible(String),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Stage1Key {
    env_ptr: usize,
    h_bits: u64,
    ring: usize,
}

/// A stage-1 cache slot. `pin` keeps the keyed envelope's allocation
/// alive for the evaluator's lifetime: the key uses the `Arc`'s address,
/// and without the pin a dropped-then-reallocated envelope at the same
/// address would silently alias a stale entry (the ABA hazard).
#[derive(Clone, Debug)]
struct Stage1Entry {
    _pin: SharedEnvelope,
    result: Stage1,
}

/// Interned identity of one flow *as it enters a multiplexer*: the
/// stage-1 wire envelope it started from (by pinned `Arc` address) plus
/// the exact chain of `(delay, rate)` transforms earlier hops applied to
/// it. Two flows share an id iff those coincide, i.e. iff their arrival
/// functions are identical, so a mux analysis keyed by member ids may be
/// reused across evaluations.
type SigId = u32;

/// One stage-2 cache-key element: a member flow's interned signature
/// plus the traffic class it presents to the port's scheduler (the
/// per-class disciplines produce different bounds for different class
/// assignments of the very same envelopes).
type MemberKey = (SigId, u8);

/// A cached stage-2 outcome.
#[derive(Clone, Debug)]
enum MuxCached {
    Ready(SchedReport),
    Infeasible(String),
}

/// Key of a cached receive-side (stage-3) analysis: reassembly and the
/// destination MAC depend only on the arrived flow (by interned
/// signature — signatures are never recycled while the cache lives), the
/// frame size it is reassembled into, the destination ring, and `H_R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ReceiveKey {
    arrived_sig: SigId,
    frame_bits: u64,
    h_bits: u64,
    ring: usize,
}

/// A cached stage-3 outcome.
#[derive(Clone, Debug)]
enum ReceiveCached {
    Ready { chi_r: Seconds, buffer: Bits },
    Infeasible(String),
}

/// Key of a receive-side *screening* bound: the flow's root (wire)
/// signature instead of its arrived signature. One entry serves every
/// arrival of the same wire flow whose per-hop queueing bounds are
/// dominated by the entry's, because the chained arrival envelope —
/// `min(C·I, A(I + d))` per hop — and the receive-MAC delay behind it
/// are pointwise nondecreasing in each hop's delay bound `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ScreenKey {
    root_sig: SigId,
    frame_bits: u64,
    h_bits: u64,
    ring: usize,
    /// Traffic class: per-class schedulers give different hop delays to
    /// different classes of the same wire flow, so entries must not be
    /// shared across classes (under FIFO every path carries class 0 or
    /// its own class consistently, so the key is simply finer).
    class: u8,
}

/// A receive analysis recorded together with the per-hop delay bounds
/// it was computed at, reusable as an upper bound whenever the current
/// path traverses the *same multiplexer sequence* (each hop's link rate
/// shapes the chained envelope, so the muxes must match exactly) with
/// every delay bound dominated hop for hop.
#[derive(Clone, Debug)]
struct ScreenEntry {
    /// `(multiplexer, its queueing-delay bound)` for each hop, in path
    /// order, at the time `chi_r` was computed.
    hops: Box<[(MuxKey, Seconds)]>,
    /// The exact receive-MAC delay at those bounds.
    chi_r: Seconds,
}

/// The [`EvalConfig`] a cache's entries were computed under, as exact
/// bit patterns: a cache attached to an evaluator with any other
/// configuration is cleared instead of consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CfgFingerprint {
    guard_subdivisions: usize,
    max_horizon: u64,
    stability_margin: u64,
    flatten_horizon: u64,
    flatten_subdivisions: usize,
    /// Digest of the network's backbone scheduler (discipline + weight
    /// map): a cache filled under one discipline must never serve an
    /// evaluator analyzing under another.
    scheduler: u64,
}

impl CfgFingerprint {
    fn of(cfg: &EvalConfig, scheduler: &Scheduler) -> Self {
        Self {
            guard_subdivisions: cfg.analysis.guard_subdivisions,
            max_horizon: cfg.analysis.max_horizon.value().to_bits(),
            stability_margin: cfg.analysis.stability_margin.to_bits(),
            flatten_horizon: cfg.flatten_horizon.value().to_bits(),
            flatten_subdivisions: cfg.flatten_subdivisions,
            scheduler: scheduler.fingerprint(),
        }
    }
}

/// Detachable cache state of an [`Evaluator`]: the stage-1 and stage-2
/// caches plus the flow-signature interner backing stage-2 keys.
///
/// A cache can outlive the evaluator that filled it
/// ([`Evaluator::into_cache`]) and seed a later one over the same
/// network ([`Evaluator::with_cache`]). Reuse is sound by the same
/// argument as within one evaluator: every entry pins the envelopes its
/// key refers to (no ABA hazard), keys capture everything the cached
/// result depends on, and a cache built under a different [`EvalConfig`]
/// is cleared on attach rather than consulted.
#[derive(Debug, Default)]
pub struct EvalCache {
    stage1: HashMap<Stage1Key, Stage1Entry>,
    /// Stage-2 analyses: per port, keyed by the member flows' interned
    /// `(signature, class)` pairs *in member order* (order matters — the
    /// aggregates sum envelopes in member order, and floating-point
    /// addition is not associative; class matters because the per-class
    /// schedulers partition the members by it).
    mux: HashMap<MuxKey, HashMap<Box<[MemberKey]>, MuxCached>>,
    /// Wire-envelope identity (pinned `Arc` address) → root signature.
    root_sigs: HashMap<usize, SigId>,
    /// `(parent signature, delay bits, link-rate bits)` → signature of
    /// the flow after that hop.
    chained_sigs: HashMap<(SigId, u64, u64), SigId>,
    /// Receive-side (stage-3) analyses.
    receive: HashMap<ReceiveKey, ReceiveCached>,
    /// Receive-side screening bounds (see [`ScreenKey`]): consulted by
    /// [`Evaluator::evaluate_screened`] to certify an existing path's
    /// deadline without re-running its receive analysis after every
    /// upstream multiplexer change.
    screen: HashMap<ScreenKey, ScreenEntry>,
    /// The envelope each signature denotes, indexed by [`SigId`]. Also
    /// the pin keeping every interned envelope (and hence every
    /// signature's `Arc` address) alive for the cache's lifetime.
    sig_envs: Vec<SharedEnvelope>,
    fingerprint: Option<CfgFingerprint>,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every entry and interned signature.
    pub fn clear(&mut self) {
        self.stage1.clear();
        self.mux.clear();
        self.root_sigs.clear();
        self.chained_sigs.clear();
        self.receive.clear();
        self.screen.clear();
        self.sig_envs.clear();
        self.fingerprint = None;
    }

    /// Number of cached sender-side (stage-1) analyses.
    #[must_use]
    pub fn stage1_entries(&self) -> usize {
        self.stage1.len()
    }

    /// Number of cached multiplexer (stage-2) analyses.
    #[must_use]
    pub fn mux_entries(&self) -> usize {
        self.mux.values().map(HashMap::len).sum()
    }

    /// Number of cached receive-side (stage-3) analyses.
    #[must_use]
    pub fn receive_entries(&self) -> usize {
        self.receive.len()
    }

    /// The signature of a wire envelope fresh out of stage 1.
    fn root_sig(&mut self, wire: &SharedEnvelope) -> SigId {
        let ptr = Arc::as_ptr(wire) as *const () as usize;
        if let Some(&id) = self.root_sigs.get(&ptr) {
            return id;
        }
        let id = SigId::try_from(self.sig_envs.len()).expect("interner overflow");
        self.root_sigs.insert(ptr, id);
        self.sig_envs.push(Arc::clone(wire));
        id
    }

    /// The signature of `parent`'s flow after traversing a port that
    /// bounds its class's queueing by `delay` on `link`; interns (and
    /// builds, exactly once) the scheduler's per-flow output envelope.
    fn chained_sig(
        &mut self,
        sched: &Scheduler,
        parent: SigId,
        delay: Seconds,
        link: &LinkConfig,
    ) -> SigId {
        let key = (parent, delay.value().to_bits(), link.rate.value().to_bits());
        if let Some(&id) = self.chained_sigs.get(&key) {
            return id;
        }
        let id = SigId::try_from(self.sig_envs.len()).expect("interner overflow");
        let env = sched.flow_output(Arc::clone(&self.sig_envs[parent as usize]), delay, link);
        self.chained_sigs.insert(key, id);
        self.sig_envs.push(env);
        id
    }

    /// The envelope a signature denotes.
    fn env(&self, sig: SigId) -> &SharedEnvelope {
        &self.sig_envs[sig as usize]
    }
}

/// Cache hit/miss counters of an [`Evaluator`] (monotone over its
/// lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Sender-side (stage-1) analyses served from cache.
    pub stage1_hits: u64,
    /// Sender-side (stage-1) analyses computed.
    pub stage1_misses: u64,
    /// Multiplexer (stage-2) analyses served from cache.
    pub mux_hits: u64,
    /// Multiplexer (stage-2) analyses computed.
    pub mux_misses: u64,
    /// Receive-side (stage-3) analyses served from cache.
    pub receive_hits: u64,
    /// Receive-side (stage-3) analyses computed.
    pub receive_misses: u64,
    /// Existing-path deadline checks certified by a screening bound
    /// (no receive analysis run at all).
    pub screen_hits: u64,
    /// Screened checks that fell through to a dense receive analysis.
    pub screen_misses: u64,
}

impl CacheStats {
    /// Fraction of stage-1 lookups that hit, or 0 with no lookups.
    #[must_use]
    pub fn stage1_hit_rate(&self) -> f64 {
        let total = self.stage1_hits + self.stage1_misses;
        if total == 0 {
            0.0
        } else {
            self.stage1_hits as f64 / total as f64
        }
    }

    /// Fraction of stage-2 (mux) lookups that hit, or 0 with no lookups.
    #[must_use]
    pub fn mux_hit_rate(&self) -> f64 {
        let total = self.mux_hits + self.mux_misses;
        if total == 0 {
            0.0
        } else {
            self.mux_hits as f64 / total as f64
        }
    }

    /// Fraction of stage-3 (receive) lookups that hit, or 0 with no
    /// lookups.
    #[must_use]
    pub fn receive_hit_rate(&self) -> f64 {
        let total = self.receive_hits + self.receive_misses;
        if total == 0 {
            0.0
        } else {
            self.receive_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self` (for aggregating per-worker
    /// evaluators after a parallel sweep).
    pub fn merge(&mut self, other: &CacheStats) {
        self.stage1_hits += other.stage1_hits;
        self.stage1_misses += other.stage1_misses;
        self.mux_hits += other.mux_hits;
        self.mux_misses += other.mux_misses;
        self.receive_hits += other.receive_hits;
        self.receive_misses += other.receive_misses;
        self.screen_hits += other.screen_hits;
        self.screen_misses += other.screen_misses;
    }

    /// Fraction of screened deadline checks decided without a dense
    /// receive analysis, or 0 with no screened checks.
    #[must_use]
    pub fn screen_hit_rate(&self) -> f64 {
        let total = self.screen_hits + self.screen_misses;
        if total == 0 {
            0.0
        } else {
            self.screen_hits as f64 / total as f64
        }
    }
}

/// A reusable, caching end-to-end delay evaluator.
///
/// Both caches are keyed by envelope `Arc` identity; every entry pins
/// the envelope it was keyed by, so entries can never alias a
/// reallocated envelope. Use one evaluator per admission request or per
/// region sweep — exactly how [`crate::cac::NetworkState`] and
/// [`crate::region::sample_region`] use it — and it will amortize
/// stage-1 across search iterations and stage-2 across every evaluation
/// in which a mux's member set is unchanged.
#[derive(Debug)]
pub struct Evaluator<'a> {
    net: &'a HetNetwork,
    cfg: EvalConfig,
    cache: EvalCache,
    scratch: Scratch,
    stats: CacheStats,
}

/// Reusable per-evaluation working state. Everything here is cleared
/// (but not deallocated) at the start of each `resolve`, so a warm
/// evaluator's hot path performs no heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    /// Per path: chi_s, buffer, frame size.
    stage1: Vec<(Seconds, Bits, Bits)>,
    /// Per path: the multiplexers it traverses, in hop order.
    hop_keys: Vec<Vec<MuxKey>>,
    /// Per path: the interned signature of its flow entering each hop
    /// (index h = entering hop h; index len = delivered to the device).
    hop_sigs: Vec<Vec<SigId>>,
    /// All `(mux, path, hop)` memberships, sorted by mux key so each
    /// port's members appear in canonical (path, hop) order.
    members: Vec<(MuxKey, u32, u32)>,
    /// Range of `members` per distinct mux: `(key, start, end)`.
    groups: Vec<(MuxKey, u32, u32)>,
    /// Worklist of group indices for the dependency-order loop.
    unresolved: Vec<u32>,
    remaining: Vec<u32>,
    /// Resolved port-wide queueing delay per mux, sorted by key (the
    /// canonical order the CAC's mux-delay signature relies on).
    mux_delay: Vec<(MuxKey, Seconds)>,
    /// Per path: the queueing delay *its class* sees at each of its hops
    /// (equal to the port-wide bound under FIFO).
    hop_delay: Vec<Vec<Seconds>>,
    /// Member `(signature, class)` pairs of the mux currently probed.
    key_sigs: Vec<MemberKey>,
    /// Member flows of the mux currently being analyzed.
    flows: Vec<ClassedFlow>,
}

/// Clears a nested buffer down to `n` empty inner vectors, reusing the
/// inner allocations already present.
fn reset_nested<T>(v: &mut Vec<Vec<T>>, n: usize) {
    v.truncate(n);
    for inner in v.iter_mut() {
        inner.clear();
    }
    while v.len() < n {
        v.push(Vec::new());
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `net` with a fresh cache.
    ///
    /// The busy-interval search horizon is clamped to the flattening
    /// horizon: a server still backlogged beyond it cannot meet any
    /// deadline of interest (it is reported infeasible instead), and
    /// evaluating envelopes past the flattened range would fall through
    /// to the expensive unflattened chains and cascade down the chain.
    #[must_use]
    pub fn new(net: &'a HetNetwork, cfg: EvalConfig) -> Self {
        Self::with_cache(net, cfg, EvalCache::new())
    }

    /// Creates an evaluator over `net` seeded with a previously filled
    /// [`EvalCache`]. If the cache was built under a different
    /// [`EvalConfig`] it is cleared first, so results never depend on
    /// where the cache came from.
    #[must_use]
    pub fn with_cache(net: &'a HetNetwork, mut cfg: EvalConfig, mut cache: EvalCache) -> Self {
        cfg.analysis.max_horizon = cfg.analysis.max_horizon.min(cfg.flatten_horizon);
        let fingerprint = CfgFingerprint::of(&cfg, net.scheduler());
        if cache.fingerprint != Some(fingerprint) {
            cache.clear();
            cache.fingerprint = Some(fingerprint);
        }
        Self {
            net,
            cfg,
            cache,
            scratch: Scratch::default(),
            stats: CacheStats::default(),
        }
    }

    /// Consumes the evaluator, handing back its cache for reuse by a
    /// later evaluator (see [`Evaluator::with_cache`]).
    #[must_use]
    pub fn into_cache(self) -> EvalCache {
        self.cache
    }

    /// Hit/miss counters of both caches, accumulated over this
    /// evaluator's lifetime.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    fn flatten(&self, env: SharedEnvelope) -> Arc<Sampled> {
        Arc::new(Sampled::flatten(
            env,
            self.cfg.flatten_horizon,
            self.cfg.flatten_subdivisions,
        ))
    }

    fn validate(&self, paths: &[PathInput]) -> Result<(), CacError> {
        for p in paths {
            if !self.net.contains(p.source) {
                return Err(CacError::InvalidRequest(format!(
                    "unknown source {}",
                    p.source
                )));
            }
            if !self.net.contains(p.dest) {
                return Err(CacError::InvalidRequest(format!("unknown dest {}", p.dest)));
            }
            if p.source.ring == p.dest.ring {
                return Err(CacError::InvalidRequest(
                    "source and destination must be on different rings".into(),
                ));
            }
        }
        Ok(())
    }

    fn stage1_for(&mut self, p: &PathInput) -> Result<Stage1, CacError> {
        let key = Stage1Key {
            env_ptr: Arc::as_ptr(&p.envelope) as *const () as usize,
            h_bits: p.h_s.per_rotation().value().to_bits(),
            ring: p.source.ring,
        };
        if let Some(hit) = self.cache.stage1.get(&key) {
            self.stats.stage1_hits += 1;
            obs::event(
                "stage1",
                &[
                    ("ring", obs::FieldValue::U64(p.source.ring as u64)),
                    ("hit", obs::FieldValue::Bool(true)),
                ],
            );
            return Ok(hit.result.clone());
        }
        self.stats.stage1_misses += 1;
        obs::event(
            "stage1",
            &[
                ("ring", obs::FieldValue::U64(p.source.ring as u64)),
                ("hit", obs::FieldValue::Bool(false)),
            ],
        );
        let ring = self.net.ring(p.source.ring);
        let computed = if p.h_s.per_rotation().value() <= 0.0 {
            Stage1::Infeasible("zero synchronous allocation".into())
        } else {
            match analyze_fddi_mac(
                Arc::clone(&p.envelope),
                ring,
                p.h_s,
                self.net.host_buffer(),
                &self.cfg.analysis,
            ) {
                Ok(mac) => match mac.delay {
                    DelayOutcome::Bounded(chi_s) => {
                        let f_s = frames::frame_size(ring, p.h_s);
                        let seg = segment_envelope(self.flatten(mac.output), f_s, self.net.ifdev());
                        let wire = self.flatten(seg.output_wire);
                        let (ts, vals) = wire.samples();
                        let wire_affine =
                            AffineBound::from_samples(ts, vals, wire.sustained_rate());
                        Stage1::Ready {
                            chi_s,
                            buffer: mac.buffer_required,
                            frame_size: f_s,
                            wire,
                            wire_affine,
                        }
                    }
                    DelayOutcome::BufferOverflow { .. } => {
                        Stage1::Infeasible(format!("source MAC buffer overflow at {}", p.source))
                    }
                },
                Err(FddiError::Analysis(e)) => {
                    Stage1::Infeasible(format!("source MAC at {}: {e}", p.source))
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.cache.stage1.insert(
            key,
            Stage1Entry {
                _pin: Arc::clone(&p.envelope),
                result: computed.clone(),
            },
        );
        Ok(computed)
    }

    /// Resolves all stage-1 analyses and multiplexers of `paths` into
    /// `self.scratch`. Returns `Ok(Some(message))` on infeasibility,
    /// `Ok(None)` when everything resolved.
    fn resolve(&mut self, paths: &[PathInput]) -> Result<Option<String>, CacError> {
        // Detach the scratch so its buffers can be filled while the
        // caches (also behind `&mut self`) are being consulted.
        let mut s = std::mem::take(&mut self.scratch);
        let out = self.resolve_into(paths, &mut s);
        self.scratch = s;
        out
    }

    fn resolve_into(
        &mut self,
        paths: &[PathInput],
        s: &mut Scratch,
    ) -> Result<Option<String>, CacError> {
        s.stage1.clear();
        reset_nested(&mut s.hop_keys, paths.len());
        reset_nested(&mut s.hop_sigs, paths.len());
        reset_nested(&mut s.hop_delay, paths.len());
        s.members.clear();
        s.groups.clear();
        s.mux_delay.clear();

        // Stage 1 (cached): source MAC + segmentation per path.
        for (pi, p) in paths.iter().enumerate() {
            let s1 = self.stage1_for(p)?;
            let (chi_s, buffer, frame_size, wire): (_, _, _, SharedEnvelope) = match s1 {
                Stage1::Ready {
                    chi_s,
                    buffer,
                    frame_size,
                    wire,
                    ..
                } => (chi_s, buffer, frame_size, wire),
                Stage1::Infeasible(msg) => return Ok(Some(msg)),
            };
            if p.h_r.per_rotation().value() <= 0.0 {
                return Ok(Some(
                    "zero synchronous allocation on the destination ring".into(),
                ));
            }
            s.stage1.push((chi_s, buffer, frame_size));
            let route = self.net.route_between(p.source.ring, p.dest.ring)?;
            let keys = &mut s.hop_keys[pi];
            keys.push(MuxKey::Uplink(p.source.ring));
            keys.extend(route.iter().map(|l| MuxKey::Backbone(l.0)));
            keys.push(MuxKey::Downlink(p.dest.ring));
            // The wire envelope is pinned by the interner (and the
            // stage-1 cache), so its address identifies it.
            s.hop_sigs[pi].push(self.cache.root_sig(&wire));
        }

        // Stage 2: resolve multiplexers in dependency order, consulting
        // the mux cache: a port whose member set (by flow signature) was
        // analyzed before returns its recorded report verbatim. Sorting
        // the membership triples groups each port's members in canonical
        // (path, hop) order — the order the aggregate is summed in.
        for (pi, keys) in s.hop_keys.iter().enumerate() {
            for (hi, &k) in keys.iter().enumerate() {
                s.members.push((k, pi as u32, hi as u32));
            }
        }
        s.members.sort_unstable();
        let mut i = 0;
        while i < s.members.len() {
            let key = s.members[i].0;
            let start = i;
            while i < s.members.len() && s.members[i].0 == key {
                i += 1;
            }
            s.groups.push((key, start as u32, i as u32));
        }

        s.unresolved.clear();
        s.unresolved.extend(0..s.groups.len() as u32);
        while !s.unresolved.is_empty() {
            let mut progressed = false;
            s.remaining.clear();
            for u in 0..s.unresolved.len() {
                let gi = s.unresolved[u] as usize;
                let (key, start, end) = s.groups[gi];
                let (start, end) = (start as usize, end as usize);
                let mut ready = true;
                for &(_, pi, hi) in &s.members[start..end] {
                    if s.hop_sigs[pi as usize].len() <= hi as usize {
                        ready = false;
                        break;
                    }
                }
                if !ready {
                    s.remaining.push(gi as u32);
                    continue;
                }
                let link = match key {
                    MuxKey::Uplink(_) | MuxKey::Downlink(_) => *self.net.access_link(),
                    MuxKey::Backbone(l) => *self.net.backbone().link(hetnet_atm::LinkId(l)),
                };
                s.key_sigs.clear();
                for &(_, pi, hi) in &s.members[start..end] {
                    let sig = s.hop_sigs[pi as usize][hi as usize];
                    s.key_sigs.push((sig, paths[pi as usize].class));
                }
                let (mux_kind, mux_index) = key.parts();
                let mux_event = |hit: bool, delay: Option<Seconds>| {
                    obs::event(
                        if delay.is_some() {
                            "mux"
                        } else {
                            "mux_infeasible"
                        },
                        &[
                            ("kind", obs::FieldValue::Str(mux_kind)),
                            ("index", obs::FieldValue::U64(mux_index as u64)),
                            ("hit", obs::FieldValue::Bool(hit)),
                            (
                                "delay_s",
                                obs::FieldValue::F64(delay.map_or(f64::NAN, Seconds::value)),
                            ),
                        ],
                    );
                };
                let report = match self
                    .cache
                    .mux
                    .get(&key)
                    .and_then(|port| port.get(s.key_sigs.as_slice()))
                {
                    Some(MuxCached::Ready(r)) => {
                        self.stats.mux_hits += 1;
                        mux_event(true, Some(r.delay_bound));
                        r.clone()
                    }
                    Some(MuxCached::Infeasible(msg)) => {
                        self.stats.mux_hits += 1;
                        mux_event(true, None);
                        return Ok(Some(msg.clone()));
                    }
                    None => {
                        self.stats.mux_misses += 1;
                        s.flows.clear();
                        for &(sig, class) in &s.key_sigs {
                            s.flows
                                .push(ClassedFlow::new(Arc::clone(self.cache.env(sig)), class));
                        }
                        match self
                            .net
                            .scheduler()
                            .analyze(&s.flows, &link, &self.cfg.analysis)
                        {
                            Ok(r) => {
                                self.cache.mux.entry(key).or_default().insert(
                                    Box::from(s.key_sigs.as_slice()),
                                    MuxCached::Ready(r.clone()),
                                );
                                mux_event(false, Some(r.delay_bound));
                                r
                            }
                            Err(AtmError::Analysis(e)) => {
                                let msg = format!("{key:?}: {e}");
                                self.cache.mux.entry(key).or_default().insert(
                                    Box::from(s.key_sigs.as_slice()),
                                    MuxCached::Infeasible(msg.clone()),
                                );
                                mux_event(false, None);
                                return Ok(Some(msg));
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                };
                s.mux_delay.push((key, report.delay_bound));
                let sched = self.net.scheduler();
                for &(_, pi, hi) in &s.members[start..end] {
                    let (pi, hi) = (pi as usize, hi as usize);
                    debug_assert_eq!(s.hop_sigs[pi].len(), hi + 1);
                    let class_delay = report.delay_of_class(paths[pi].class);
                    let parent = s.hop_sigs[pi][hi];
                    let sig = self.cache.chained_sig(sched, parent, class_delay, &link);
                    s.hop_sigs[pi].push(sig);
                    s.hop_delay[pi].push(class_delay);
                }
                progressed = true;
            }
            if !progressed && !s.remaining.is_empty() {
                return Err(CacError::InvalidNetwork(
                    "cyclic multiplexer dependencies (routes are not feedforward)".into(),
                ));
            }
            std::mem::swap(&mut s.unresolved, &mut s.remaining);
        }
        // Canonical order for the CAC's mux-delay signature comparison.
        s.mux_delay.sort_unstable_by_key(|&(k, _)| k);
        Ok(None)
    }

    /// The receive-independent delay pieces of path `pi`, read off the
    /// resolved scratch: every term of the total except `fddi_r`.
    fn fixed_parts(&self, p: &PathInput, s: &Scratch, pi: usize) -> FixedParts {
        let net = self.net;
        let ring_s = net.ring(p.source.ring);
        let keys = &s.hop_keys[pi];
        let (chi_s, buffer_s, frame_size) = s.stage1[pi];

        let fddi_s = chi_s + ring_s.propagation;
        let uplink_q = s.hop_delay[pi][0];
        let id_s = net.ifdev().sender_fixed_delay() + uplink_q;

        let mut atm = net.access_link().propagation
            + net
                .backbone()
                .switch(net.switch_of(p.source.ring))
                .fabric_latency;
        for (hi, k) in keys.iter().enumerate().skip(1) {
            atm += s.hop_delay[pi][hi];
            match k {
                MuxKey::Backbone(l) => {
                    let link = net.backbone().link(hetnet_atm::LinkId(*l));
                    let target = net.backbone().link_target(hetnet_atm::LinkId(*l));
                    atm += link.propagation + net.backbone().switch(target).fabric_latency;
                }
                MuxKey::Downlink(_) => {
                    atm += net.access_link().propagation;
                }
                MuxKey::Uplink(_) => unreachable!("uplink only at hop 0"),
            }
        }

        let id_r = net.ifdev().receiver_fixed_delay();
        FixedParts {
            fddi_s,
            id_s,
            atm,
            id_r,
            buffer_s,
            frame_size,
        }
    }

    /// The receive-side (stage-3) analysis for path `pi`'s arrived flow,
    /// served from (and filling) the exact receive cache.
    fn receive_for(
        &mut self,
        p: &PathInput,
        arrived_sig: SigId,
        frame_size: Bits,
    ) -> Result<ReceiveCached, CacError> {
        let net = self.net;
        let ring_r = net.ring(p.dest.ring);
        let key = ReceiveKey {
            arrived_sig,
            frame_bits: frame_size.value().to_bits(),
            h_bits: p.h_r.per_rotation().value().to_bits(),
            ring: p.dest.ring,
        };
        let receive_event = |hit: bool| {
            obs::event(
                "receive",
                &[
                    ("ring", obs::FieldValue::U64(p.dest.ring as u64)),
                    ("hit", obs::FieldValue::Bool(hit)),
                ],
            );
        };
        if let Some(hit) = self.cache.receive.get(&key) {
            self.stats.receive_hits += 1;
            receive_event(true);
            return Ok(hit.clone());
        }
        self.stats.receive_misses += 1;
        receive_event(false);
        let arrived = Arc::clone(self.cache.env(arrived_sig));
        let rea = reassemble_envelope(arrived, frame_size, net.ifdev());
        let computed = match analyze_fddi_mac(
            rea.output_frames,
            ring_r,
            p.h_r,
            net.device_buffer(),
            &self.cfg.analysis,
        ) {
            Ok(m) => match m.delay {
                DelayOutcome::Bounded(chi_r) => ReceiveCached::Ready {
                    chi_r,
                    buffer: m.buffer_required,
                },
                DelayOutcome::BufferOverflow { .. } => ReceiveCached::Infeasible(format!(
                    "receive MAC buffer overflow on ring {}",
                    p.dest.ring
                )),
            },
            Err(FddiError::Analysis(e)) => {
                ReceiveCached::Infeasible(format!("receive MAC on ring {}: {e}", p.dest.ring))
            }
            Err(e) => return Err(e.into()),
        };
        self.cache.receive.insert(key, computed.clone());
        Ok(computed)
    }

    /// Completes the receive side of path `pi` and assembles its report.
    /// Needs `&mut self` for the stage-3 cache; callers detach the
    /// scratch first (see [`Evaluator::resolve`]).
    fn finish_path(
        &mut self,
        p: &PathInput,
        s: &Scratch,
        pi: usize,
    ) -> Result<Result<PathReport, String>, CacError> {
        let fixed = self.fixed_parts(p, s, pi);
        let arrived_sig = *s.hop_sigs[pi].last().expect("route has hops");
        let cached = self.receive_for(p, arrived_sig, fixed.frame_size)?;
        let (chi_r, buffer_r) = match cached {
            ReceiveCached::Ready { chi_r, buffer } => (chi_r, buffer),
            ReceiveCached::Infeasible(msg) => return Ok(Err(msg)),
        };
        let fddi_r = chi_r + self.net.ring(p.dest.ring).propagation;
        let total = fixed.sum() + fddi_r;
        Ok(Ok(PathReport {
            fddi_s: fixed.fddi_s,
            id_s: fixed.id_s,
            atm: fixed.atm,
            id_r: fixed.id_r,
            fddi_r,
            total,
            buffer_mac_s: fixed.buffer_s,
            buffer_mac_r: buffer_r,
        }))
    }

    /// Checks `total ≤ deadline` for existing path `pi`, trying in
    /// order: the exact receive cache, the monotone screening bound,
    /// and only then a dense receive analysis (whose result refreshes
    /// the screening entry). The boolean outcome is identical to the
    /// dense check's in every case — the screening bound only ever
    /// *passes* a path, and a bound passing implies the exact total
    /// passes — so decisions never depend on the cache's history.
    fn deadline_check(
        &mut self,
        p: &PathInput,
        s: &Scratch,
        pi: usize,
        deadline: Seconds,
    ) -> Result<Result<DeadlineCheck, String>, CacError> {
        let fixed = self.fixed_parts(p, s, pi);
        let before_receive = fixed.sum() + self.net.ring(p.dest.ring).propagation;
        let arrived_sig = *s.hop_sigs[pi].last().expect("route has hops");
        let exact_key = ReceiveKey {
            arrived_sig,
            frame_bits: fixed.frame_size.value().to_bits(),
            h_bits: p.h_r.per_rotation().value().to_bits(),
            ring: p.dest.ring,
        };
        // Exact result already known: no bound needed.
        if let Some(hit) = self.cache.receive.get(&exact_key) {
            self.stats.receive_hits += 1;
            return Ok(match hit {
                ReceiveCached::Ready { chi_r, .. } => {
                    let total = before_receive + *chi_r;
                    Ok(if total <= deadline {
                        DeadlineCheck::Pass
                    } else {
                        DeadlineCheck::Miss { total }
                    })
                }
                ReceiveCached::Infeasible(msg) => Err(msg.clone()),
            });
        }
        let screen_key = ScreenKey {
            root_sig: s.hop_sigs[pi][0],
            frame_bits: exact_key.frame_bits,
            h_bits: exact_key.h_bits,
            ring: p.dest.ring,
            class: p.class,
        };
        let keys = &s.hop_keys[pi];
        if let Some(entry) = self.cache.screen.get(&screen_key) {
            let dominated = entry.hops.len() == keys.len()
                && keys
                    .iter()
                    .zip(&s.hop_delay[pi])
                    .zip(entry.hops.iter())
                    .all(|((k, d), (ek, bound))| k == ek && *d <= *bound);
            if dominated && before_receive + entry.chi_r <= deadline {
                self.stats.screen_hits += 1;
                return Ok(Ok(DeadlineCheck::Pass));
            }
        }
        self.stats.screen_misses += 1;
        let cached = self.receive_for(p, arrived_sig, fixed.frame_size)?;
        let chi_r = match cached {
            ReceiveCached::Ready { chi_r, .. } => chi_r,
            ReceiveCached::Infeasible(msg) => return Ok(Err(msg)),
        };
        // Refresh the screening entry whenever the new bounds dominate
        // the recorded ones (hop bounds grow as the closure fills, so
        // the dominant analysis is also the most recent in practice).
        let hops: Box<[(MuxKey, Seconds)]> = keys
            .iter()
            .zip(&s.hop_delay[pi])
            .map(|(k, d)| (*k, *d))
            .collect();
        match self.cache.screen.entry(screen_key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(ScreenEntry { hops, chi_r });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let old = o.get();
                let dominates = old.hops.len() != hops.len()
                    || old
                        .hops
                        .iter()
                        .zip(hops.iter())
                        .any(|((ok, _), (nk, _))| ok != nk)
                    || old
                        .hops
                        .iter()
                        .zip(hops.iter())
                        .all(|((_, a), (_, b))| a <= b);
                if dominates {
                    o.insert(ScreenEntry { hops, chi_r });
                }
            }
        }
        let total = before_receive + chi_r;
        Ok(Ok(if total <= deadline {
            DeadlineCheck::Pass
        } else {
            DeadlineCheck::Miss { total }
        }))
    }

    /// Evaluates the worst-case delays of all `paths`.
    ///
    /// # Errors
    ///
    /// [`CacError`] for malformed inputs; instability yields
    /// `Ok(EvalOutcome::Infeasible)`.
    pub fn evaluate_full(&mut self, paths: &[PathInput]) -> Result<EvalOutcome, CacError> {
        let _span = obs::span("evaluate_full");
        self.validate(paths)?;
        if paths.is_empty() {
            return Ok(EvalOutcome::Feasible(Vec::new()));
        }
        if let Some(msg) = self.resolve(paths)? {
            return Ok(EvalOutcome::Infeasible(msg));
        }
        let s = std::mem::take(&mut self.scratch);
        let out = (|| {
            let mut reports = Vec::with_capacity(paths.len());
            for (pi, p) in paths.iter().enumerate() {
                match self.finish_path(p, &s, pi)? {
                    Ok(r) => reports.push(r),
                    Err(msg) => return Ok(EvalOutcome::Infeasible(msg)),
                }
            }
            Ok(EvalOutcome::Feasible(reports))
        })();
        self.scratch = s;
        out
    }

    /// Evaluates like [`Evaluator::evaluate_full`] but verifies existing
    /// paths' deadlines without materializing their reports: each is
    /// checked against the exact receive cache, then the monotone
    /// screening bound, and only densely when both miss (the dense
    /// result then refreshes the screening entry). The candidate (last
    /// path) always gets a dense, exact report. Because the screening
    /// bound only ever *passes* a path — and a bound passing implies the
    /// exact check passes — the outcome never depends on cache history.
    ///
    /// # Errors
    ///
    /// [`CacError`] for malformed inputs.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty or `deadlines` does not hold exactly
    /// one deadline per existing (non-candidate) path.
    pub fn evaluate_screened(
        &mut self,
        paths: &[PathInput],
        deadlines: &[Seconds],
    ) -> Result<ScreenedOutcome, CacError> {
        let _span = obs::span("evaluate_screened");
        assert!(!paths.is_empty(), "screened evaluation needs paths");
        assert_eq!(
            deadlines.len(),
            paths.len() - 1,
            "one deadline per existing path"
        );
        self.validate(paths)?;
        if let Some(msg) = self.resolve(paths)? {
            return Ok(ScreenedOutcome::Infeasible(msg));
        }
        let last = paths.len() - 1;
        let s = std::mem::take(&mut self.scratch);
        let out = (|| {
            for (pi, (p, deadline)) in paths[..last].iter().zip(deadlines).enumerate() {
                match self.deadline_check(p, &s, pi, *deadline)? {
                    Ok(DeadlineCheck::Pass) => {}
                    Ok(DeadlineCheck::Miss { total }) => {
                        return Ok(ScreenedOutcome::DeadlineMiss { index: pi, total });
                    }
                    Err(msg) => return Ok(ScreenedOutcome::Infeasible(msg)),
                }
            }
            match self.finish_path(&paths[last], &s, last)? {
                Ok(candidate) => Ok(ScreenedOutcome::Feasible { candidate }),
                Err(msg) => Ok(ScreenedOutcome::Infeasible(msg)),
            }
        })();
        self.scratch = s;
        out
    }

    /// Evaluates only the *last* path's full report (the CAC's search
    /// candidate), plus the multiplexer-delay signature. Existing paths'
    /// receive sides are skipped — sound inside the CAC's searches
    /// because existing deadlines are verified at the maximum allocation
    /// and are monotone in the candidate's allocation.
    ///
    /// # Errors
    ///
    /// [`CacError`] for malformed inputs.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    pub fn evaluate_candidate(
        &mut self,
        paths: &[PathInput],
    ) -> Result<CandidateOutcome, CacError> {
        let _span = obs::span("evaluate_candidate");
        assert!(!paths.is_empty(), "candidate evaluation needs paths");
        self.validate(paths)?;
        if let Some(msg) = self.resolve(paths)? {
            return Ok(CandidateOutcome::Infeasible(msg));
        }
        let last = paths.len() - 1;
        let s = std::mem::take(&mut self.scratch);
        let out = match self.finish_path(&paths[last], &s, last) {
            Ok(Ok(candidate)) => Ok(CandidateOutcome::Feasible {
                candidate,
                mux_delays: s.mux_delay.iter().map(|&(_, d)| d).collect(),
            }),
            Ok(Err(msg)) => Ok(CandidateOutcome::Infeasible(msg)),
            Err(e) => Err(e),
        };
        self.scratch = s;
        out
    }

    /// Sender-side quantities the admission fast path needs for one path
    /// at one allocation, served from (and filling) the stage-1 cache:
    /// the exact `χ_S`, the frame size, and the affine wire bound.
    /// `None` when stage 1 is infeasible at this allocation.
    ///
    /// # Errors
    ///
    /// Propagates hard configuration errors exactly like
    /// [`Evaluator::evaluate_candidate`].
    pub(crate) fn fast_stage1(&mut self, p: &PathInput) -> Result<Option<FastStage1>, CacError> {
        Ok(match self.stage1_for(p)? {
            Stage1::Ready {
                chi_s,
                frame_size,
                wire,
                wire_affine,
                ..
            } => Some(FastStage1 {
                chi_s,
                frame_size,
                wire_affine,
                window: wire.horizon(),
            }),
            Stage1::Infeasible(_) => None,
        })
    }

    /// The (clamped) configuration this evaluator analyzes under.
    pub(crate) fn config(&self) -> &EvalConfig {
        &self.cfg
    }
}

/// Sender-side stage-1 summary for the admission fast path.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FastStage1 {
    /// Exact source-MAC delay `χ_S` (identical to the dense path's).
    pub(crate) chi_s: Seconds,
    /// Frame size `F_S` on the source ring at this allocation.
    pub(crate) frame_size: Bits,
    /// Affine bound dominating the dense wire envelope on `[0, window]`.
    pub(crate) wire_affine: AffineBound,
    /// Horizon (seconds) of the wire envelope's sample table.
    pub(crate) window: f64,
}

/// Evaluates the worst-case delays of all `paths` simultaneously
/// (stateless convenience wrapper over [`Evaluator`]).
///
/// # Errors
///
/// Returns [`CacError`] only for malformed inputs (unknown hosts,
/// same-ring connections, broken topology); resource exhaustion and
/// instability yield `Ok(EvalOutcome::Infeasible)`.
pub fn evaluate_paths(
    net: &HetNetwork,
    paths: &[PathInput],
    cfg: &EvalConfig,
) -> Result<EvalOutcome, CacError> {
    Evaluator::new(net, cfg.clone()).evaluate_full(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetnet_traffic::models::DualPeriodicEnvelope;
    use hetnet_traffic::units::BitsPerSec;

    fn net() -> HetNetwork {
        HetNetwork::paper_topology()
    }

    fn source() -> SharedEnvelope {
        Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(2.0),
                Seconds::from_millis(100.0),
                Bits::from_mbits(0.25),
                Seconds::from_millis(10.0),
                BitsPerSec::from_mbps(100.0),
            )
            .unwrap(),
        )
    }

    fn h(ms: f64) -> SyncBandwidth {
        SyncBandwidth::new(Seconds::from_millis(ms))
    }

    fn path(src: (usize, usize), dst: (usize, usize), hs: f64, hr: f64) -> PathInput {
        PathInput {
            source: HostId {
                ring: src.0,
                station: src.1,
            },
            dest: HostId {
                ring: dst.0,
                station: dst.1,
            },
            envelope: source(),
            h_s: h(hs),
            h_r: h(hr),
            class: 0,
        }
    }

    #[test]
    fn single_connection_decomposition_sums() {
        let reports = evaluate_paths(
            &net(),
            &[path((0, 0), (1, 0), 2.4, 2.4)],
            &EvalConfig::default(),
        )
        .unwrap()
        .feasible()
        .expect("feasible at generous allocation");
        let r = &reports[0];
        let sum = r.fddi_s + r.id_s + r.atm + r.id_r + r.fddi_r;
        assert!((r.total.value() - sum.value()).abs() < 1e-12);
        // FDDI MACs dominate; ATM contributes a small but positive part.
        assert!(r.fddi_s.as_millis() > 10.0, "{r:?}");
        assert!(r.fddi_r.as_millis() > 10.0, "{r:?}");
        assert!(r.atm.value() > 0.0);
        assert!(r.id_s.value() > 0.0);
        assert!(r.id_r.value() > 0.0);
        assert!(r.buffer_mac_s.value() > 0.0);
        assert!(r.buffer_mac_r.value() > 0.0);
    }

    #[test]
    fn empty_input_is_trivially_feasible() {
        let out = evaluate_paths(&net(), &[], &EvalConfig::default()).unwrap();
        assert!(matches!(out, EvalOutcome::Feasible(v) if v.is_empty()));
    }

    #[test]
    fn more_source_bandwidth_reduces_own_delay() {
        let cfg = EvalConfig::default();
        let mut prev = f64::INFINITY;
        for hs in [1.8, 2.4, 3.6] {
            let r = evaluate_paths(&net(), &[path((0, 0), (1, 0), hs, 2.4)], &cfg)
                .unwrap()
                .feasible()
                .unwrap();
            let total = r[0].total.value();
            assert!(total <= prev + 1e-9, "hs={hs}: {total} > {prev}");
            prev = total;
        }
    }

    #[test]
    fn cross_traffic_inflates_existing_delay() {
        let cfg = EvalConfig::default();
        let solo = evaluate_paths(&net(), &[path((0, 0), (1, 0), 2.4, 2.4)], &cfg)
            .unwrap()
            .feasible()
            .unwrap()[0]
            .total;
        let duo = evaluate_paths(
            &net(),
            &[
                path((0, 0), (1, 0), 2.4, 2.4),
                path((0, 1), (1, 1), 2.4, 2.4),
            ],
            &cfg,
        )
        .unwrap()
        .feasible()
        .unwrap();
        assert!(
            duo[0].total >= solo,
            "sharing cannot reduce the bound: {} < {solo}",
            duo[0].total
        );
        assert!(duo[0].atm.value() > 0.0);
    }

    #[test]
    fn undersized_allocation_reports_infeasible() {
        let out = evaluate_paths(
            &net(),
            &[path((0, 0), (1, 0), 1.0, 2.4)],
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
        let out = evaluate_paths(
            &net(),
            &[path((0, 0), (1, 0), 2.4, 1.0)],
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
    }

    #[test]
    fn zero_allocation_is_infeasible_not_error() {
        let out = evaluate_paths(
            &net(),
            &[path((0, 0), (1, 0), 0.0, 2.4)],
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
        let out = evaluate_paths(
            &net(),
            &[path((0, 0), (1, 0), 2.4, 0.0)],
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
    }

    #[test]
    fn malformed_requests_are_errors() {
        let cfg = EvalConfig::default();
        let mut p = path((0, 0), (1, 0), 2.4, 2.4);
        p.dest.ring = 0;
        assert!(matches!(
            evaluate_paths(&net(), &[p], &cfg),
            Err(CacError::InvalidRequest(_))
        ));
        let mut p = path((0, 0), (1, 0), 2.4, 2.4);
        p.source.station = 99;
        assert!(matches!(
            evaluate_paths(&net(), &[p], &cfg),
            Err(CacError::InvalidRequest(_))
        ));
    }

    #[test]
    fn overload_on_receive_ring_is_infeasible() {
        // Four flows converging on ring 1, each needing ~20 Mb/s of
        // synchronous service at the receiving device, with receive
        // allocations adding to more than TTRT can offer.
        let mut paths: Vec<PathInput> =
            (0..4).map(|s| path((0, s), (1, s % 4), 2.0, 0.9)).collect();
        paths.extend((0..3).map(|s| path((2, s), (1, (s + 1) % 4), 2.0, 0.9)));
        let out = evaluate_paths(&net(), &paths, &EvalConfig::default()).unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
    }

    #[test]
    fn undersized_buffers_make_paths_infeasible() {
        // A generous allocation is feasible with unlimited buffers…
        let generous = path((0, 0), (1, 0), 2.4, 2.4);
        let unlimited = evaluate_paths(
            &net(),
            std::slice::from_ref(&generous),
            &EvalConfig::default(),
        )
        .unwrap()
        .feasible()
        .expect("feasible without buffer limits");
        let needed = unlimited[0].buffer_mac_s;
        // …but a host buffer below the Theorem-1.2 requirement overflows.
        let tiny = net().with_buffers(Some(Bits::new(needed.value() * 0.5)), None);
        let out = evaluate_paths(
            &tiny,
            std::slice::from_ref(&generous),
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
        // A buffer at least the requirement keeps the path feasible.
        let enough = net().with_buffers(Some(Bits::new(needed.value() * 1.2)), None);
        let out = evaluate_paths(
            &enough,
            std::slice::from_ref(&generous),
            &EvalConfig::default(),
        )
        .unwrap();
        assert!(matches!(out, EvalOutcome::Feasible(_)));
        // Same on the device side.
        let needed_r = unlimited[0].buffer_mac_r;
        let tiny_dev = net().with_buffers(None, Some(Bits::new(needed_r.value() * 0.5)));
        let out = evaluate_paths(&tiny_dev, &[generous], &EvalConfig::default()).unwrap();
        assert!(matches!(out, EvalOutcome::Infeasible(_)));
    }

    #[test]
    fn evaluator_cache_hits_across_calls() {
        let network = net();
        let mut ev = Evaluator::new(&network, EvalConfig::default());
        let p0 = path((0, 0), (1, 0), 2.4, 2.4);
        let _ = ev.evaluate_full(std::slice::from_ref(&p0)).unwrap();
        let first = ev.cache_stats();
        assert_eq!(first.stage1_misses, 1);
        assert_eq!(first.stage1_hits, 0);
        assert!(first.mux_misses > 0);
        assert_eq!(first.mux_hits, 0);
        // Same envelope Arc, H_S, and member sets: all three stages hit.
        let _ = ev.evaluate_full(std::slice::from_ref(&p0)).unwrap();
        let second = ev.cache_stats();
        assert_eq!(second.stage1_hits, 1);
        assert_eq!(second.stage1_misses, 1);
        assert_eq!(second.mux_hits, first.mux_misses);
        assert_eq!(second.mux_misses, first.mux_misses);
        assert_eq!(second.receive_hits, 1);
        assert_eq!(second.receive_misses, 1);
        assert!(second.stage1_hit_rate() > 0.0);
        assert!(second.mux_hit_rate() > 0.0);
        assert!(second.receive_hit_rate() > 0.0);
        // Different H_S: a new wire envelope, so stage 1 misses and
        // every traversed mux's member set changes (misses again).
        let mut p1 = p0.clone();
        p1.h_s = h(3.0);
        let _ = ev.evaluate_full(&[p1]).unwrap();
        let third = ev.cache_stats();
        assert_eq!(third.stage1_misses, 2);
        assert!(third.mux_misses > second.mux_misses);
    }

    #[test]
    fn cached_evaluations_are_bit_identical() {
        let network = net();
        let paths = [
            path((0, 0), (1, 0), 2.4, 2.4),
            path((1, 1), (2, 1), 2.4, 2.4),
        ];
        let mut warm = Evaluator::new(&network, EvalConfig::default());
        let a = warm.evaluate_full(&paths).unwrap().feasible().unwrap();
        let b = warm.evaluate_full(&paths).unwrap().feasible().unwrap();
        assert!(warm.cache_stats().mux_hits > 0);
        let fresh = evaluate_paths(&network, &paths, &EvalConfig::default())
            .unwrap()
            .feasible()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, fresh);
    }

    #[test]
    fn cache_survives_envelope_reallocation() {
        // Regression: both caches are keyed by envelope Arc addresses.
        // Entries pin their envelope, so a dropped envelope's address
        // cannot be reused while the evaluator lives; without the pin,
        // an unlucky reallocation would serve a different connection's
        // analysis (the ABA hazard).
        let network = net();
        let cfg = EvalConfig::default();
        let mut long_lived = Evaluator::new(&network, cfg.clone());
        let rounds = 16;
        for round in 0..rounds {
            // A fresh, slightly different envelope each round, dropped
            // at the end of the round: the allocator is free to hand a
            // later round the same address.
            let mut p = path((0, 0), (1, 0), 2.4, 2.4);
            p.envelope = Arc::new(
                DualPeriodicEnvelope::new(
                    Bits::from_mbits(1.0 + 0.05 * round as f64),
                    Seconds::from_millis(100.0),
                    Bits::from_mbits(0.25),
                    Seconds::from_millis(10.0),
                    BitsPerSec::from_mbps(100.0),
                )
                .unwrap(),
            );
            let cached = long_lived
                .evaluate_full(std::slice::from_ref(&p))
                .unwrap()
                .feasible()
                .unwrap();
            let fresh = evaluate_paths(&network, std::slice::from_ref(&p), &cfg)
                .unwrap()
                .feasible()
                .unwrap();
            assert_eq!(cached, fresh, "round {round}");
        }
        // Every round used a distinct envelope, so a correct cache sees
        // all misses; any hit would have been a false (aliased) one.
        assert_eq!(long_lived.cache_stats().stage1_hits, 0);
        assert_eq!(long_lived.cache_stats().stage1_misses, rounds);
        assert_eq!(long_lived.cache_stats().mux_hits, 0);
    }

    #[test]
    fn candidate_mode_matches_full_mode() {
        let network = net();
        let mut ev = Evaluator::new(&network, EvalConfig::default());
        let paths = [
            path((0, 0), (1, 0), 2.4, 2.4),
            path((1, 1), (2, 1), 2.4, 2.4),
            path((2, 2), (0, 2), 2.4, 2.4),
        ];
        let full = ev.evaluate_full(&paths).unwrap().feasible().unwrap();
        let CandidateOutcome::Feasible {
            candidate,
            mux_delays,
        } = ev.evaluate_candidate(&paths).unwrap()
        else {
            panic!("feasible")
        };
        // The candidate (last path) must agree exactly with full mode.
        assert!((candidate.total.value() - full[2].total.value()).abs() < 1e-12);
        assert!(!mux_delays.is_empty());
    }

    #[test]
    fn detached_cache_seeds_a_later_evaluator() {
        let network = net();
        let cfg = EvalConfig::default();
        let paths = [
            path((0, 0), (1, 0), 2.4, 2.4),
            path((1, 1), (2, 1), 2.4, 2.4),
        ];
        let mut first = Evaluator::new(&network, cfg.clone());
        let a = first.evaluate_full(&paths).unwrap().feasible().unwrap();
        let cache = first.into_cache();
        assert!(cache.stage1_entries() > 0);
        assert!(cache.mux_entries() > 0);
        // A second evaluator over the same cache serves everything from
        // it — zero misses — and returns bit-identical reports.
        let mut second = Evaluator::with_cache(&network, cfg, cache);
        let b = second.evaluate_full(&paths).unwrap().feasible().unwrap();
        let stats = second.cache_stats();
        assert_eq!(stats.stage1_misses, 0, "{stats:?}");
        assert_eq!(stats.mux_misses, 0, "{stats:?}");
        assert_eq!(stats.receive_misses, 0, "{stats:?}");
        assert!(stats.stage1_hits > 0 && stats.mux_hits > 0, "{stats:?}");
        assert!(stats.receive_hits > 0, "{stats:?}");
        assert_eq!(a, b);
    }

    #[test]
    fn config_change_invalidates_a_detached_cache() {
        let network = net();
        let p = path((0, 0), (1, 0), 2.4, 2.4);
        let mut first = Evaluator::new(&network, EvalConfig::default());
        let _ = first.evaluate_full(std::slice::from_ref(&p)).unwrap();
        let cache = first.into_cache();
        assert!(cache.stage1_entries() > 0);
        // Attaching under a different config clears the cache: results
        // must come from the new configuration, not the old entries.
        let mut second = Evaluator::with_cache(&network, EvalConfig::fast(), cache);
        let cached = second
            .evaluate_full(std::slice::from_ref(&p))
            .unwrap()
            .feasible()
            .unwrap();
        let stats = second.cache_stats();
        assert_eq!(stats.stage1_hits, 0, "{stats:?}");
        assert_eq!(stats.mux_hits, 0, "{stats:?}");
        let fresh = evaluate_paths(&network, std::slice::from_ref(&p), &EvalConfig::fast())
            .unwrap()
            .feasible()
            .unwrap();
        assert_eq!(cached, fresh);
    }

    #[test]
    fn candidate_mode_detects_infeasibility() {
        let network = net();
        let mut ev = Evaluator::new(&network, EvalConfig::default());
        let paths = [path((0, 0), (1, 0), 1.0, 2.4)];
        assert!(matches!(
            ev.evaluate_candidate(&paths).unwrap(),
            CandidateOutcome::Infeasible(_)
        ));
    }

    /// With zero lookups the hit rates are a well-defined 0.0, not the
    /// 0/0 NaN that would poison every JSON report they feed.
    #[test]
    fn hit_rates_are_zero_not_nan_without_lookups() {
        let stats = CacheStats::default();
        assert_eq!(stats.stage1_hit_rate(), 0.0);
        assert_eq!(stats.mux_hit_rate(), 0.0);
        // A fresh evaluator that never evaluated reports the same.
        let network = net();
        let ev = Evaluator::new(&network, EvalConfig::default());
        let fresh = ev.cache_stats();
        assert!(!fresh.stage1_hit_rate().is_nan());
        assert!(!fresh.mux_hit_rate().is_nan());
        // One-sided counters stay finite and in range too.
        let hits_only = CacheStats {
            stage1_hits: 3,
            ..CacheStats::default()
        };
        assert_eq!(hits_only.stage1_hit_rate(), 1.0);
        assert_eq!(hits_only.mux_hit_rate(), 0.0);
        let misses_only = CacheStats {
            mux_misses: 4,
            ..CacheStats::default()
        };
        assert_eq!(misses_only.mux_hit_rate(), 0.0);
    }

    /// The evaluator narrates its cache behaviour: one `stage1` event
    /// per lookup and one `mux` event per port probe, each tagged with
    /// hit/miss, matching [`CacheStats`] exactly.
    #[test]
    fn evaluator_emits_cache_attribution_events() {
        let network = net();
        let p = path((0, 0), (1, 0), 2.4, 2.4);
        let (stats, trace) = obs::collect(4096, || {
            let mut ev = Evaluator::new(&network, EvalConfig::fast());
            let _ = ev.evaluate_full(std::slice::from_ref(&p)).unwrap();
            let _ = ev.evaluate_full(std::slice::from_ref(&p)).unwrap();
            ev.cache_stats()
        });
        let count = |name: &str, hit: bool| {
            trace
                .records()
                .iter()
                .filter(|r| {
                    r.name == name
                        && r.fields
                            .iter()
                            .any(|(k, v)| *k == "hit" && *v == obs::FieldValue::Bool(hit))
                })
                .count() as u64
        };
        assert_eq!(count("stage1", true), stats.stage1_hits);
        assert_eq!(count("stage1", false), stats.stage1_misses);
        assert_eq!(count("mux", true), stats.mux_hits);
        assert_eq!(count("mux", false), stats.mux_misses);
        assert_eq!(count("receive", true), stats.receive_hits);
        assert_eq!(count("receive", false), stats.receive_misses);
        assert!(stats.receive_hits > 0 && stats.receive_misses > 0);
        // Both evaluations ran under an `evaluate_full` span.
        let spans = trace
            .records()
            .iter()
            .filter(|r| r.kind == obs::RecordKind::SpanStart && r.name == "evaluate_full")
            .count();
        assert_eq!(spans, 2);
    }
}
