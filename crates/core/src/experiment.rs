//! The §6 performance evaluation: admission probability under a dynamic
//! connection workload.
//!
//! Requests arrive as a Poisson process with rate λ; each picks a random
//! *inactive* source host and a random destination on another ring, with
//! a deadline drawn uniformly from a range; admitted connections live
//! for an exponentially distributed time with mean 1/μ. The offered
//! backbone utilization is `U = λ/(L·μ) · ρ / C_link` (the paper uses
//! `L = 3` inter-switch links for its three-switch backbone), so the
//! driver derives λ from the requested `U`.

use crate::cac::{AdmissionOptions, CacConfig, Decision, NetworkState, RejectReason};
use crate::connection::{ConnectionId, ConnectionSpec};
use crate::error::CacError;
use crate::network::{HetNetwork, HostId};
use hetnet_sim::rng::{exponential, pick_index, poisson_interarrival};
use hetnet_traffic::envelope::Envelope as _;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The workload of the paper's simulation study.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Source traffic model of every connection (dual-periodic, eq. 37).
    pub source: DualPeriodicEnvelope,
    /// End-to-end deadline range; each request draws uniformly.
    pub deadline: (Seconds, Seconds),
    /// Mean connection lifetime `1/μ`.
    pub mean_lifetime: Seconds,
    /// Target average utilization `U` of one backbone link.
    pub utilization: f64,
    /// Number of inter-switch links dividing the offered load (3 for the
    /// paper's backbone).
    pub links_for_utilization: f64,
    /// Number of connection requests to simulate.
    pub requests: usize,
    /// RNG seed (experiments are reproducible bit-for-bit).
    pub seed: u64,
    /// Number of backbone traffic classes; each request draws its class
    /// uniformly from `0..classes`. With `1` (the paper's setting) every
    /// connection is class 0 and no RNG draw is spent, so pre-scheduler
    /// experiment results replay bit-for-bit.
    pub classes: u8,
}

impl Workload {
    /// A workload matching the spirit of §6 on the paper topology:
    /// 20 Mb/s dual-periodic sources (2 Mbit / 100 ms, bursts of
    /// 0.25 Mbit / 10 ms at ring speed), deadlines of 80–160 ms, 100 s
    /// mean lifetime. The constants are sized so both the rings and the
    /// backbone contend as U grows (see EXPERIMENTS.md for calibration
    /// notes — the paper does not publish its own constants).
    #[must_use]
    pub fn paper_style(utilization: f64, requests: usize, seed: u64) -> Self {
        Self {
            source: DualPeriodicEnvelope::new(
                hetnet_traffic::units::Bits::from_mbits(2.0),
                Seconds::from_millis(100.0),
                hetnet_traffic::units::Bits::from_mbits(0.25),
                Seconds::from_millis(10.0),
                hetnet_traffic::units::BitsPerSec::from_mbps(100.0),
            )
            .expect("paper-style source parameters are valid"),
            deadline: (Seconds::from_millis(80.0), Seconds::from_millis(160.0)),
            mean_lifetime: Seconds::new(100.0),
            utilization,
            links_for_utilization: 3.0,
            requests,
            seed,
            classes: 1,
        }
    }

    /// The Poisson arrival rate λ realizing the target utilization on
    /// `net`: `λ = U · L · μ · C_link / ρ`.
    ///
    /// # Panics
    ///
    /// Panics if the workload parameters are degenerate.
    #[must_use]
    pub fn arrival_rate(&self, net: &HetNetwork) -> f64 {
        assert!(self.utilization > 0.0, "utilization must be positive");
        let rho = self.source.sustained_rate().value();
        let c = net.access_link().rate.value();
        let mu = 1.0 / self.mean_lifetime.value();
        self.utilization * self.links_for_utilization * mu * c / rho
    }
}

/// Aggregated results of one admission experiment.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Requests that reached the CAC.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Rejections because a ring's synchronous budget was exhausted.
    pub rejected_bandwidth: u64,
    /// Rejections because some deadline could not be met.
    pub rejected_deadline: u64,
    /// Arrivals dropped because no inactive source host existed (these
    /// never become CAC requests, mirroring the paper's "source chosen
    /// from inactive hosts").
    pub no_free_host: u64,
    /// Time-averaged number of active connections.
    pub mean_active: f64,
    /// The admission probability `admitted / requests`.
    pub admission_probability: f64,
}

#[derive(PartialEq)]
struct Departure {
    at: f64,
    id: ConnectionId,
}
impl Eq for Departure {}
impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on time.
        other.at.total_cmp(&self.at)
    }
}

/// Runs the admission-probability experiment of §6.
///
/// # Errors
///
/// Returns [`CacError`] if the network or workload is malformed.
pub fn run_admission_experiment(
    net: HetNetwork,
    workload: &Workload,
    cfg: &CacConfig,
) -> Result<ExperimentResult, CacError> {
    if workload.deadline.0 > workload.deadline.1 || workload.deadline.0.value() <= 0.0 {
        return Err(CacError::InvalidRequest("bad deadline range".into()));
    }
    let lambda = workload.arrival_rate(&net);
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let opts = AdmissionOptions::beta_search(cfg.clone());
    let mut state = NetworkState::new(net);
    // Rejected requests leave the active set unchanged, so carrying the
    // evaluator cache across them is free accuracy-wise and saves the
    // mux re-analysis on the next arrival.
    state.persist_eval_cache(true);
    let mut departures: BinaryHeap<Departure> = BinaryHeap::new();
    let mut result = ExperimentResult::default();

    let mut now = 0.0_f64;
    let mut active_area = 0.0_f64; // integral of active count over time
    let mut last_event = 0.0_f64;

    while result.requests < workload.requests as u64 {
        let next_arrival = now + poisson_interarrival(&mut rng, lambda).value();
        // Process departures first.
        while departures.peek().is_some_and(|d| d.at <= next_arrival) {
            let d = departures.pop().expect("peeked");
            active_area += state.active().len() as f64 * (d.at - last_event);
            last_event = d.at;
            state.release(d.id)?;
        }
        now = next_arrival;
        active_area += state.active().len() as f64 * (now - last_event);
        last_event = now;

        // Pick a random inactive source host.
        let free: Vec<HostId> = state
            .network()
            .hosts()
            .filter(|h| !state.host_busy(*h))
            .collect();
        let Some(src_idx) = pick_index(&mut rng, free.len()) else {
            result.no_free_host += 1;
            continue;
        };
        let source = free[src_idx];
        // Destination: uniform over hosts on other rings.
        let dests: Vec<HostId> = state
            .network()
            .hosts()
            .filter(|h| h.ring != source.ring)
            .collect();
        let dest = dests[pick_index(&mut rng, dests.len()).expect("other rings exist")];
        let (dlo, dhi) = (workload.deadline.0.value(), workload.deadline.1.value());
        let deadline = Seconds::new(rng.gen_range(dlo..=dhi));
        let class = if workload.classes > 1 {
            rng.gen_range(0..usize::from(workload.classes)) as u8
        } else {
            0
        };
        let spec = ConnectionSpec {
            source,
            dest,
            envelope: Arc::new(workload.source),
            deadline,
            class,
        };

        result.requests += 1;
        match state.admit(spec, &opts)? {
            Decision::Admitted { id, .. } => {
                result.admitted += 1;
                let life = exponential(&mut rng, workload.mean_lifetime).value();
                departures.push(Departure { at: now + life, id });
            }
            Decision::Rejected(reason) => match reason {
                RejectReason::SourceBandwidthExhausted { .. }
                | RejectReason::DestBandwidthExhausted { .. } => {
                    result.rejected_bandwidth += 1;
                }
                _ => result.rejected_deadline += 1,
            },
        }
    }

    result.mean_active = if last_event > 0.0 {
        active_area / last_event
    } else {
        0.0
    };
    result.admission_probability = if result.requests > 0 {
        result.admitted as f64 / result.requests as f64
    } else {
        0.0
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_paper_formula() {
        let net = HetNetwork::paper_topology();
        let w = Workload::paper_style(0.6, 10, 1);
        // lambda = U * 3 * mu * C / rho = 0.6*3*(1/100)*155e6/20e6
        let expect = 0.6 * 3.0 * 0.01 * 155.0e6 / 20.0e6;
        assert!((w.arrival_rate(&net) - expect).abs() < 1e-9);
    }

    #[test]
    fn light_load_admits_more_than_heavy_load() {
        // With the calibrated workload (see EXPERIMENTS.md) the network
        // carries only a few fat connections, so even light offered load
        // sees some blocking; the invariant worth testing is the
        // *ordering* of admission probabilities.
        let light = run_admission_experiment(
            HetNetwork::paper_topology(),
            &Workload::paper_style(0.1, 60, 42),
            &CacConfig::fast(),
        )
        .unwrap();
        let heavy = run_admission_experiment(
            HetNetwork::paper_topology(),
            &Workload::paper_style(0.9, 60, 42),
            &CacConfig::fast(),
        )
        .unwrap();
        assert_eq!(light.requests, 60);
        assert_eq!(
            light.admitted + light.rejected_bandwidth + light.rejected_deadline,
            light.requests
        );
        assert!(
            light.admission_probability > 0.4,
            "AP at U=0.1 too low: {light:?}"
        );
        assert!(
            light.admission_probability > heavy.admission_probability,
            "light {light:?} vs heavy {heavy:?}"
        );
        assert!(heavy.mean_active > light.mean_active);
    }

    #[test]
    fn heavy_load_rejects_some() {
        let net = HetNetwork::paper_topology();
        let w = Workload::paper_style(1.2, 40, 7);
        let r = run_admission_experiment(net, &w, &CacConfig::fast()).unwrap();
        assert!(
            r.admission_probability < 1.0,
            "AP at U=1.2 must be below 1: {r:?}"
        );
        assert!(r.mean_active > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = Workload::paper_style(0.5, 25, 99);
        let a =
            run_admission_experiment(HetNetwork::paper_topology(), &w, &CacConfig::fast()).unwrap();
        let b =
            run_admission_experiment(HetNetwork::paper_topology(), &w, &CacConfig::fast()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_deadline_range_rejected() {
        let mut w = Workload::paper_style(0.5, 5, 1);
        w.deadline = (Seconds::from_millis(100.0), Seconds::from_millis(50.0));
        assert!(
            run_admission_experiment(HetNetwork::paper_topology(), &w, &CacConfig::default())
                .is_err()
        );
    }
}
