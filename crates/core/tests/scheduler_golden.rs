//! FIFO bit-identity gate for the `SchedulerAnalysis` refactor.
//!
//! The pluggable-scheduler work re-routes the multiplexer analysis
//! through a trait object; under [`Scheduler::Fifo`] that indirection
//! must be invisible — every decision *and* every traced delay
//! decomposition keeps the exact IEEE-754 bits the pre-refactor code
//! produced. The transcript below was generated from the pre-refactor
//! tree and is committed as
//! `tests/golden/scheduler_fifo_transcript.txt`; any drift in a FIFO
//! decision or trace payload shows up as a golden diff. Regenerate
//! after an intentional change:
//!
//! ```text
//! SCHEDULER_GOLDEN_WRITE=1 cargo test -p hetnet-cac --test scheduler_golden
//! ```
//!
//! Unlike the fast-path golden, this one also renders the decision
//! *trace* — the five eq.-7 stage terms, slack, binding constraint and
//! allocation of every evaluated candidate — so a scheduler that
//! perturbs an intermediate bound without flipping the decision still
//! trips the gate.

use hetnet_cac::cac::{AdmissionOptions, CacConfig, Decision, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{Component, HetNetwork, HostId, RingId};
use hetnet_cac::trace::DecisionTrace;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use std::path::Path;
use std::sync::Arc;

fn spec(
    c1_mbit: f64,
    deadline_ms: f64,
    src: (usize, usize),
    dst: (usize, usize),
) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: src.0,
            station: src.1,
        },
        dest: HostId {
            ring: dst.0,
            station: dst.1,
        },
        envelope: Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(c1_mbit),
                Seconds::from_millis(100.0),
                Bits::from_mbits(c1_mbit / 8.0),
                Seconds::from_millis(12.5),
                BitsPerSec::from_mbps(100.0),
            )
            .unwrap(),
        ),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

fn bits(s: Seconds) -> String {
    format!("{:016x}", s.value().to_bits())
}

fn render_decision(d: &Decision) -> String {
    match d {
        Decision::Admitted {
            id,
            h_s,
            h_r,
            delay_bound,
        } => format!(
            "admit id={} h_s={:016x} h_r={:016x} delay={:016x}",
            id.0,
            h_s.per_rotation().value().to_bits(),
            h_r.per_rotation().value().to_bits(),
            delay_bound.value().to_bits(),
        ),
        Decision::Rejected(reason) => format!("reject {reason:?}"),
    }
}

/// Renders a trace's numeric payloads as raw bits: the committed
/// allocation, the binding constraint, and every evaluated candidate's
/// five-stage delay decomposition plus slack.
fn render_trace(t: &DecisionTrace) -> Vec<String> {
    let mut out = Vec::new();
    let alloc = match &t.allocation {
        Some((h_s, h_r)) => format!(
            "h_s={:016x} h_r={:016x}",
            h_s.per_rotation().value().to_bits(),
            h_r.per_rotation().value().to_bits(),
        ),
        None => "none".to_string(),
    };
    let binding = match &t.binding {
        Some(b) => b.kind().to_string(),
        None => "none".to_string(),
    };
    out.push(format!(
        "trace seq={} admitted={} alloc=[{alloc}] binding={binding}",
        t.seq, t.admitted,
    ));
    for c in &t.connections {
        out.push(format!(
            "  conn id={:?} fddi_s={} id_s={} atm={} id_r={} fddi_r={} total={} slack={} dominant={}",
            c.id.map(|i| i.0),
            bits(c.report.fddi_s),
            bits(c.report.id_s),
            bits(c.report.atm),
            bits(c.report.id_r),
            bits(c.report.fddi_r),
            bits(c.report.total),
            bits(c.slack),
            c.dominant.name(),
        ));
    }
    out
}

type Op = (usize, f64, f64, usize, usize);

/// Applies `ops` to a fresh traced paper-topology state and returns the
/// rendered decision + trace stream plus the final active set.
fn run(ops: &[Op], fast: bool) -> Vec<String> {
    let net = HetNetwork::paper_topology();
    let mut s = NetworkState::new(net);
    s.set_decision_tracing(true);
    if fast {
        s.set_fast_path(true).expect("empty state");
        s.persist_eval_cache(true);
    }
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    let mut out = Vec::new();
    for &(sel, c1, deadline_ms, src_ring, dst_ring) in ops {
        match sel {
            0..=3 => {
                let src_r = src_ring % 3;
                let dst_r = (src_r + 1 + (dst_ring % 2)) % 3;
                let sp = spec(c1, deadline_ms, (src_r, sel), (dst_r, (sel + 1) % 4));
                let d = s.admit(sp, &opts).expect("well-formed request");
                out.push(render_decision(&d));
                let t = s.last_decision_trace().expect("tracing is on");
                out.extend(render_trace(t));
            }
            4 => {
                if let Some(id) = s.active().first().map(|c| c.id) {
                    s.release(id).expect("active id");
                    out.push(format!("release id={}", id.0));
                }
            }
            _ => {
                let ring = Component::Ring(RingId(src_ring % 3));
                let report = s.set_component_down(ring).expect("known component");
                let torn: Vec<u64> = report.torn.iter().map(|c| c.id.0).collect();
                out.push(format!("fault ring={} torn={torn:?}", src_ring % 3));
                s.set_component_up(ring).expect("known component");
            }
        }
    }
    for c in s.active() {
        out.push(format!(
            "active id={} h_s={:016x} h_r={:016x} delay={:016x}",
            c.id.0,
            c.h_s.per_rotation().value().to_bits(),
            c.h_r.per_rotation().value().to_bits(),
            c.delay_bound.value().to_bits(),
        ));
    }
    out
}

/// Pinned mixed accept/reject/fault stream whose decision bits *and*
/// trace payloads are committed as a golden file. Certified equal with
/// the fast path on and off before being compared against the golden.
#[test]
fn fifo_transcript_matches_pre_refactor_golden() {
    let ops: Vec<Op> = vec![
        (0, 2.0, 100.0, 0, 1), // admit across the backbone
        (1, 1.0, 80.0, 1, 2),  // second admit, different rings
        (2, 2.5, 1.2, 0, 2),   // tight deadline → reject
        (3, 0.5, 60.0, 2, 0),  // small flow, reverse direction
        (0, 1.75, 45.0, 1, 1), // third ring pair
        (4, 0.0, 0.0, 0, 0),   // release the oldest
        (5, 0.0, 0.0, 1, 0),   // fault ring 1, tearing down its flows
        (0, 1.5, 90.0, 0, 2),  // re-admit after restore
        (2, 9.5, 100.0, 0, 1), // oversized burst → reject
        (1, 0.75, 30.0, 2, 1), // final admit on the warmed state
    ];
    let dense = run(&ops, false);
    let fast = run(&ops, true);
    assert_eq!(dense, fast, "fast path changed the pinned stream");

    let mut rendered = String::new();
    for line in &fast {
        rendered.push_str(line);
        rendered.push('\n');
    }
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scheduler_fifo_transcript.txt");
    if std::env::var_os("SCHEDULER_GOLDEN_WRITE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        eprintln!("regenerated {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SCHEDULER_GOLDEN_WRITE=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "FIFO decision/trace bits drifted from {}; if intentional, \
         regenerate with SCHEDULER_GOLDEN_WRITE=1",
        golden_path.display()
    );
}
