//! Property test backing the CAC's use of Theorems 3–4: sampled
//! feasible regions are convex (single-run rows/columns/diagonals) for
//! randomized sources and deadlines.

use hetnet_cac::cac::CacConfig;
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{HetNetwork, HostId};
use hetnet_cac::region::sample_region;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    // Region sampling is comparatively expensive; a handful of cases on
    // a modest grid is plenty to catch a non-convex regression.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sampled_regions_are_convex(
        c1_mbit in 0.8_f64..2.5,
        bursts in 4_usize..12,
        deadline_ms in 40.0_f64..150.0,
    ) {
        let p1 = Seconds::from_millis(100.0);
        let p2 = Seconds::from_millis(100.0 / bursts as f64);
        let c2 = Bits::from_mbits(c1_mbit / bursts as f64);
        let env = DualPeriodicEnvelope::new(
            Bits::from_mbits(c1_mbit),
            p1,
            c2,
            p2,
            BitsPerSec::from_mbps(100.0),
        )
        .expect("generated source valid");
        let spec = ConnectionSpec {
            source: HostId { ring: 0, station: 0 },
            dest: HostId { ring: 1, station: 0 },
            envelope: Arc::new(env),
            deadline: Seconds::from_millis(deadline_ms),
        class: 0,
        };
        let net = HetNetwork::paper_topology();
        let map = sample_region(
            &net,
            &[],
            &spec,
            Seconds::from_millis(7.2),
            Seconds::from_millis(7.2),
            7,
            &CacConfig::fast(),
        )
        .expect("well-formed request");
        prop_assert_eq!(map.convexity_violations(), 0, "{}", map.ascii());
        // Monotone corners: if any point is feasible, the max corner is.
        if map.any_feasible() {
            prop_assert!(map.get(map.rows() - 1, map.cols() - 1), "{}", map.ascii());
        }
    }
}
