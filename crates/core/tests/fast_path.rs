//! Certification gate for the incremental fast path.
//!
//! The decision ladder in [`hetnet_cac::incremental`] may only change
//! *how fast* an admission decision is reached, never the decision
//! itself: the β-search probes it short-circuits must agree, bit for
//! bit, with the dense evaluator on every committed allocation. Two
//! checks pin that down:
//!
//! 1. a property test drives a fast-path-enabled [`NetworkState`] and a
//!    dense one through identical admit/release/fault interleavings and
//!    requires every decision — allocations and delay bounds rendered
//!    as raw IEEE-754 bits, reject reasons verbatim — plus the final
//!    active set to be identical;
//! 2. a pinned scenario renders its decision stream (again at bit
//!    granularity) against `tests/golden/fast_path_decisions.txt`, so a
//!    behaviour change shows up as a golden diff even if it affects
//!    both evaluators at once. Regenerate after an intentional change:
//!
//!    ```text
//!    FAST_PATH_WRITE=1 cargo test -p hetnet-cac --test fast_path
//!    ```

use hetnet_cac::cac::{AdmissionOptions, CacConfig, Decision, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{Component, HetNetwork, HostId, RingId};
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

fn spec(
    c1_mbit: f64,
    deadline_ms: f64,
    src: (usize, usize),
    dst: (usize, usize),
) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: src.0,
            station: src.1,
        },
        dest: HostId {
            ring: dst.0,
            station: dst.1,
        },
        envelope: Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(c1_mbit),
                Seconds::from_millis(100.0),
                Bits::from_mbits(c1_mbit / 8.0),
                Seconds::from_millis(12.5),
                BitsPerSec::from_mbps(100.0),
            )
            .unwrap(),
        ),
        deadline: Seconds::from_millis(deadline_ms),
    }
}

/// Renders a decision with float payloads as raw bits, so "equal"
/// means bit-identical, not approximately equal.
fn render(d: &Decision) -> String {
    match d {
        Decision::Admitted {
            id,
            h_s,
            h_r,
            delay_bound,
        } => format!(
            "admit id={} h_s={:016x} h_r={:016x} delay={:016x}",
            id.0,
            h_s.per_rotation().value().to_bits(),
            h_r.per_rotation().value().to_bits(),
            delay_bound.value().to_bits(),
        ),
        Decision::Rejected(reason) => format!("reject {reason:?}"),
    }
}

/// One step of an interleaving. `sel` picks the operation, the rest
/// parameterise an admission request.
type Op = (usize, f64, f64, usize, usize);

/// Applies `ops` to a fresh paper-topology state and returns the
/// rendered event stream plus the final active set (also at bit
/// granularity).
fn run(ops: &[Op], fast: bool) -> Vec<String> {
    let net = HetNetwork::paper_topology();
    let mut s = NetworkState::new(net);
    if fast {
        s.set_fast_path(true).expect("empty state");
        s.persist_eval_cache(true);
    }
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    let mut out = Vec::new();
    for &(sel, c1, deadline_ms, src_ring, dst_ring) in ops {
        match sel {
            // Admission request (the common case). The destination ring
            // is derived as a non-zero offset from the source: same-ring
            // requests are invalid by construction.
            0..=3 => {
                let src_r = src_ring % 3;
                let dst_r = (src_r + 1 + (dst_ring % 2)) % 3;
                let sp = spec(c1, deadline_ms, (src_r, sel), (dst_r, (sel + 1) % 4));
                let d = s.admit(sp, &opts).expect("well-formed request");
                out.push(render(&d));
            }
            // Release the oldest connection, if any.
            4 => {
                if let Some(id) = s.active().first().map(|c| c.id) {
                    s.release(id).expect("active id");
                    out.push(format!("release id={}", id.0));
                }
            }
            // Ring fault: tear down everything crossing it, then
            // restore. Exercises the teardown sweep + rebuild path.
            _ => {
                let ring = Component::Ring(RingId(src_ring % 3));
                let report = s.set_component_down(ring).expect("known component");
                let torn: Vec<u64> = report.torn.iter().map(|c| c.id.0).collect();
                out.push(format!("fault ring={} torn={torn:?}", src_ring % 3));
                s.set_component_up(ring).expect("known component");
            }
        }
    }
    for c in s.active() {
        out.push(format!(
            "active id={} h_s={:016x} h_r={:016x} delay={:016x}",
            c.id.0,
            c.h_s.per_rotation().value().to_bits(),
            c.h_r.per_rotation().value().to_bits(),
            c.delay_bound.value().to_bits(),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The fast path must be a pure accelerator: identical op streams
    /// produce bit-identical decision streams with it on or off.
    #[test]
    fn fast_path_decisions_are_bit_identical_to_dense(
        ops in proptest::collection::vec(
            (0usize..6, 0.25f64..3.0, 1.0f64..120.0, 0usize..3, 0usize..3),
            1..12,
        )
    ) {
        let dense = run(&ops, false);
        let fast = run(&ops, true);
        prop_assert_eq!(&dense, &fast, "fast path changed the decision stream");
    }
}

/// Pinned scenario: a mixed accept/reject/fault stream whose exact
/// decision bits are committed as a golden file, certified equal with
/// the fast path on and off.
#[test]
fn pinned_decision_stream_matches_golden() {
    let ops: Vec<Op> = vec![
        (0, 2.0, 100.0, 0, 1), // admit across the backbone
        (1, 1.0, 80.0, 1, 2),  // second admit, different rings
        (2, 2.5, 1.2, 0, 2),   // tight deadline → reject
        (3, 0.5, 60.0, 2, 0),  // small flow, reverse direction
        (4, 0.0, 0.0, 0, 0),   // release the oldest
        (5, 0.0, 0.0, 1, 0),   // fault ring 1, tearing down its flows
        (0, 1.5, 90.0, 0, 2),  // re-admit after restore
        (2, 9.5, 100.0, 0, 1), // oversized burst → reject
    ];
    let dense = run(&ops, false);
    let fast = run(&ops, true);
    assert_eq!(dense, fast, "fast path changed the pinned stream");

    let mut rendered = String::new();
    for line in &fast {
        rendered.push_str(line);
        rendered.push('\n');
    }
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fast_path_decisions.txt");
    if std::env::var_os("FAST_PATH_WRITE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        eprintln!("regenerated {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with FAST_PATH_WRITE=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "decision bits drifted from {}; if intentional, regenerate with FAST_PATH_WRITE=1",
        golden_path.display()
    );
}
