//! Determinism of the parallel region sweep: for every worker count,
//! the stitched map — cells and both axes — is exactly (bitwise) the
//! sequential result. Randomizes the candidate source, its deadline,
//! and the active-connection background; sweeps grids from 2×2 up to
//! 17×17, including worker counts that do not divide the cell count
//! evenly.

use hetnet_cac::cac::CacConfig;
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::delay::PathInput;
use hetnet_cac::network::{HetNetwork, HostId};
use hetnet_cac::region::{sample_region_threads, RegionSample};
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_traffic::envelope::SharedEnvelope;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::sync::Arc;

fn envelope(c1_mbit: f64, bursts: usize) -> SharedEnvelope {
    Arc::new(
        DualPeriodicEnvelope::new(
            Bits::from_mbits(c1_mbit),
            Seconds::from_millis(100.0),
            Bits::from_mbits(c1_mbit / bursts as f64),
            Seconds::from_millis(100.0 / bursts as f64),
            BitsPerSec::from_mbps(100.0),
        )
        .expect("generated source valid"),
    )
}

/// A background connection from ring `k % 3` to the next ring, with a
/// moderate fixed allocation.
fn background(k: usize, c1_mbit: f64) -> PathInput {
    let h = SyncBandwidth::new(Seconds::from_millis(2.2));
    PathInput {
        source: HostId {
            ring: k % 3,
            station: k % 4,
        },
        dest: HostId {
            ring: (k + 1) % 3,
            station: (k + 2) % 4,
        },
        envelope: envelope(c1_mbit, 5),
        h_s: h,
        h_r: h,
        class: 0,
    }
}

fn candidate(c1_mbit: f64, bursts: usize, deadline_ms: f64) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: 0,
            station: 0,
        },
        dest: HostId {
            ring: 1,
            station: 0,
        },
        envelope: envelope(c1_mbit, bursts),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

fn sweep(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    grid: usize,
    threads: usize,
) -> RegionSample {
    sample_region_threads(
        net,
        active,
        spec,
        Seconds::from_millis(7.2),
        Seconds::from_millis(7.2),
        grid,
        &CacConfig::fast(),
        threads,
    )
    .expect("well-formed request")
}

/// Bitwise equality of an allocation axis.
fn axis_bits(axis: &[SyncBandwidth]) -> Vec<u64> {
    axis.iter()
        .map(|h| h.per_rotation().value().to_bits())
        .collect()
}

fn assert_identical(seq: &RegionSample, par: &RegionSample, label: &str) {
    assert_eq!(par.map.cells(), seq.map.cells(), "{label}: cells diverged");
    assert_eq!(
        axis_bits(&par.map.h_s),
        axis_bits(&seq.map.h_s),
        "{label}: H_S axis diverged"
    );
    assert_eq!(
        axis_bits(&par.map.h_r),
        axis_bits(&seq.map.h_r),
        "{label}: H_R axis diverged"
    );
}

proptest! {
    // Each case runs one sequential sweep plus three parallel ones.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_sweep_matches_sequential(
        c1_mbit in 0.8_f64..2.5,
        bursts in 4_usize..12,
        deadline_ms in 30.0_f64..150.0,
        grid in 2_usize..6,
        n_active in 0_usize..5,
    ) {
        let net = HetNetwork::paper_topology();
        let active: Vec<PathInput> =
            (0..n_active).map(|k| background(k, 1.0 + 0.2 * k as f64)).collect();
        let spec = candidate(c1_mbit, bursts, deadline_ms);
        let seq = sweep(&net, &active, &spec, grid, 1);
        // 3 and 7 leave ragged final chunks for most grid sizes.
        for threads in [2, 3, 7] {
            let par = sweep(&net, &active, &spec, grid, threads);
            assert_identical(&seq, &par, &format!("grid {grid}, threads {threads}"));
        }
    }
}

#[test]
fn parallel_sweep_matches_sequential_on_large_grid() {
    // The benchmark configuration: 17×17 cells over 8 active
    // connections. 5 and 16 workers split 289 cells unevenly.
    let net = HetNetwork::paper_topology();
    let active: Vec<PathInput> = (0..8)
        .map(|k| background(k, 0.9 + 0.1 * k as f64))
        .collect();
    let spec = candidate(1.8, 6, 80.0);
    let seq = sweep(&net, &active, &spec, 17, 1);
    for threads in [5, 16] {
        let par = sweep(&net, &active, &spec, 17, threads);
        assert_identical(&seq, &par, &format!("grid 17, threads {threads}"));
    }
    // A 17×17 sweep revisits each column's wire envelope 17 times and
    // every background-only mux every cell: the caches must be earning
    // their keep in the sequential sweep.
    assert!(seq.stats.mux_hits > 0, "{:?}", seq.stats);
    assert!(seq.stats.stage1_hit_rate() > 0.5, "{:?}", seq.stats);
}
