//! Certification of live reconfiguration: a state retuned by
//! [`NetworkState::reconfigure`] must be *indistinguishable* from a
//! fresh engine built at the new parameters and fed the surviving
//! connections in admission order. The property test holds that over
//! randomized sources, deadlines and plans; the pinned golden snapshot
//! locks one deterministic reconfigured state bit for bit; the
//! directed tests cover the ugly corners — a TTRT shrink forcing
//! victims while a component is down, and a grow that turns a
//! just-rejected request admissible.
//!
//! Regenerate the golden file with `RECONFIG_WRITE=1 cargo test -p
//! hetnet-cac --test reconfig` after an intentional change to the
//! snapshot format or the admission arithmetic, and say why in the
//! commit.

use hetnet_cac::cac::{AdmissionOptions, CacConfig, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{Component, HetNetwork, HostId, RingId};
use hetnet_cac::reconfig::ReconfigPlan;
use hetnet_fddi::ring::RingConfig;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

fn spec(
    src: (usize, usize),
    dst: (usize, usize),
    deadline_ms: f64,
    c1_mbit: f64,
) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: src.0,
            station: src.1,
        },
        dest: HostId {
            ring: dst.0,
            station: dst.1,
        },
        envelope: Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(c1_mbit),
                Seconds::from_millis(100.0),
                Bits::from_mbits(c1_mbit / 8.0),
                Seconds::from_millis(12.5),
                BitsPerSec::from_mbps(100.0),
            )
            .expect("valid source"),
        ),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

/// The paper topology with every ring retuned to `ttrt_ms`.
fn retuned_net(ttrt_ms: f64) -> HetNetwork {
    let ring = RingConfig {
        ttrt: Seconds::from_millis(ttrt_ms),
        ..RingConfig::standard()
    };
    HetNetwork::paper_topology()
        .with_ring_configs(vec![ring; 3])
        .expect("valid retuned ring")
}

/// Every observable allocation field of the two states must agree bit
/// for bit (ids, allocations, delay bounds — the full snapshot JSON is
/// the strictest practical equality). The decision sequence is
/// normalized away: the reconfiguration itself consumes one sequence
/// number the fresh engine never saw, by design.
fn assert_states_bit_identical(a: &NetworkState, b: &NetworkState) {
    let strip = |s: &NetworkState| {
        let json = s.snapshot().to_json();
        let start = json.find("\"decision_seq\":").expect("snapshot has a seq");
        let end = start + json[start..].find(',').expect("seq is not last");
        format!("{}{}", &json[..start], &json[end..])
    };
    assert_eq!(strip(a), strip(b));
}

#[test]
fn pinned_reconfigured_snapshot_matches_golden() {
    let mut s = NetworkState::new(HetNetwork::paper_topology());
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    s.set_clock(Seconds::new(2.0));
    assert!(s
        .admit(spec((0, 0), (1, 0), 100.0, 2.0), &opts)
        .unwrap()
        .is_admitted());
    s.set_clock(Seconds::new(4.0));
    assert!(s
        .admit(spec((1, 1), (2, 0), 90.0, 1.5), &opts)
        .unwrap()
        .is_admitted());
    s.set_clock(Seconds::new(6.0));
    assert!(s
        .admit(spec((2, 1), (0, 2), 120.0, 1.0), &opts)
        .unwrap()
        .is_admitted());
    s.set_clock(Seconds::new(8.0));
    let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(12.0)).with_beta(0.3);
    let report = s.reconfigure(&plan, &opts).expect("valid plan");
    assert_eq!(report.survivors(), 3);

    let rendered = s.snapshot().to_json();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/reconfig_snapshot.json");
    if std::env::var_os("RECONFIG_WRITE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        eprintln!("regenerated {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with RECONFIG_WRITE=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "reconfigured snapshot drifted from the pinned golden; if the change is \
         intentional, regenerate with RECONFIG_WRITE=1 and say why in the commit"
    );
}

#[test]
fn shrink_forces_victims_while_a_component_is_down() {
    let mut s = NetworkState::new(HetNetwork::paper_topology());
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    // Fill all three rings; the ring-1 paths die with the component,
    // the rest stay up as reconfiguration candidates.
    let specs = [
        spec((0, 0), (2, 0), 100.0, 1.4),
        spec((2, 1), (0, 1), 110.0, 1.2),
        spec((0, 2), (1, 0), 100.0, 1.0),
        spec((2, 2), (0, 3), 120.0, 0.8),
    ];
    for sp in &specs {
        assert!(s.admit(sp.clone(), &opts).unwrap().is_admitted());
    }
    let torn = s
        .set_component_down(Component::Ring(RingId(1)))
        .expect("known component")
        .torn
        .len();
    assert_eq!(torn, 1, "exactly the ring-1 path dies with the component");
    let live_before = s.active().len();

    // Shrink to a sliver of synchronous budget while ring 1 is still
    // down: survivors must renegotiate into the tightened budget, and
    // whatever no longer fits is dropped — not silently squeezed.
    let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(6.0))
        .with_overhead(Seconds::from_millis(5.5));
    let report = s.reconfigure(&plan, &opts).expect("valid plan");
    assert!(
        !report.dropped.is_empty(),
        "a 0.5 ms allocatable budget must shed load: {}",
        report.summary()
    );
    assert!(report.reclaimed_s.value() > 0.0);
    assert_eq!(report.survivors() + report.dropped.len(), live_before);
    assert_eq!(s.active().len(), report.survivors());

    // The downed component stays down through the reconfiguration: a
    // request over ring 1 is still refused, and restoring it afterwards
    // works against the retuned rings.
    assert!(!s
        .admit(spec((0, 1), (1, 2), 100.0, 0.1), &opts)
        .unwrap()
        .is_admitted());
    s.set_component_up(Component::Ring(RingId(1)))
        .expect("known component");
    assert_eq!(s.network().rings()[0].ttrt, Seconds::from_millis(6.0));
}

#[test]
fn grow_turns_a_rejected_request_admissible() {
    let mut s = NetworkState::new(HetNetwork::paper_topology());
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    // Two heavy flows squeeze ring 0's per-rotation budget until a
    // third, lighter request no longer clears the MAC stability check
    // at the standard 0.8 ms per-rotation overhead.
    for station in 0..2 {
        assert!(s
            .admit(spec((0, station), (1, station), 150.0, 2.2), &opts)
            .unwrap()
            .is_admitted());
    }
    let candidate = spec((0, 2), (1, 2), 150.0, 1.2);
    assert!(
        !s.admit(candidate.clone(), &opts).unwrap().is_admitted(),
        "the third request must not fit under the standard overhead"
    );

    // Grow the usable budget by shrinking the token-passing overhead
    // (faster hardware, same TTRT): every rotation gains dead time
    // back, so survivors renegotiate and the identical request fits.
    let plan = ReconfigPlan::default().with_overhead(Seconds::from_micros(100.0));
    let report = s.reconfigure(&plan, &opts).expect("valid plan");
    assert_eq!(report.survivors(), 2, "growth never drops anyone");
    assert!(report.dropped.is_empty());
    assert!(
        s.admit(candidate, &opts).unwrap().is_admitted(),
        "reclaiming 0.7 ms of per-rotation overhead must admit the previously \
         rejected request"
    );
}

proptest! {
    // Each case runs several full admissions plus a reconfiguration on
    // two engines; a handful of cases is plenty to catch an arithmetic
    // or ordering divergence.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The certification property: reconfigure-then-admit equals
    /// fresh-engine-at-new-parameters admit, bit for bit — including
    /// the decision taken on the next candidate request.
    #[test]
    fn reconfigure_then_admit_matches_fresh_engine(
        c1_mbit in 0.8_f64..2.0,
        deadline_ms in 60.0_f64..150.0,
        ttrt_ms in 5.0_f64..16.0,
        beta in 0.0_f64..1.0,
        candidate_c1 in 0.5_f64..2.5,
    ) {
        let opts = AdmissionOptions::beta_search(CacConfig::fast());
        let specs = [
            spec((0, 0), (1, 0), deadline_ms, c1_mbit),
            spec((1, 1), (2, 0), deadline_ms + 10.0, c1_mbit * 0.8),
            spec((2, 2), (0, 1), deadline_ms + 20.0, c1_mbit * 0.6),
        ];
        let mut live = NetworkState::new(HetNetwork::paper_topology());
        for sp in &specs {
            prop_assert!(live.admit(sp.clone(), &opts).unwrap().is_admitted());
        }
        let plan = ReconfigPlan::uniform_ttrt(Seconds::from_millis(ttrt_ms)).with_beta(beta);
        let report = live.reconfigure(&plan, &opts).expect("valid plan");
        if !report.dropped.is_empty() {
            // A shrink that sheds load breaks the prefix correspondence
            // below; the victim path is certified by the directed tests.
            return;
        }

        // The fresh engine at the new parameters admits the survivors
        // in admission order under the post-reconfig options, and must
        // land on the same bits everywhere.
        let new_opts = AdmissionOptions::beta_search(CacConfig::fast().with_beta(beta));
        let mut fresh = NetworkState::new(retuned_net(ttrt_ms));
        for sp in &specs {
            prop_assert!(fresh.admit(sp.clone(), &new_opts).unwrap().is_admitted());
        }
        assert_states_bit_identical(&live, &fresh);

        // And the *next* decision must be the same decision, admitted
        // or rejected, byte for byte.
        let candidate = spec((0, 2), (2, 3), deadline_ms, candidate_c1);
        let da = live.admit(candidate.clone(), &new_opts).unwrap();
        let db = fresh.admit(candidate, &new_opts).unwrap();
        prop_assert_eq!(format!("{da:?}"), format!("{db:?}"));
        assert_states_bit_identical(&live, &fresh);
    }
}
