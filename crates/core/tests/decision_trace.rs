//! Property tests for [`hetnet_cac::trace::DecisionTrace`] invariants:
//! whatever the workload, every traced decision must decompose its
//! delay budget consistently (the five eq.-7 stage terms sum to the
//! reported total), every admitted candidate must keep nonnegative
//! slack, and every rejection must name its binding constraint.

use hetnet_cac::cac::{AdmissionOptions, CacConfig, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{HetNetwork, HostId};
use hetnet_cac::trace::{BindingConstraint, ServerStage};
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    // Each case drives several admissions through a fresh state; a
    // couple dozen cases cover admits, deadline rejects, and
    // bandwidth-exhaustion rejects across the deadline range.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decision_traces_hold_their_invariants(
        c1_mbit in 1.0_f64..2.5,
        bursts in 4_usize..10,
        deadline_ms in 2.0_f64..160.0,
        requests in 3_usize..8,
        seed in 0_usize..1000,
    ) {
        let env: hetnet_traffic::envelope::SharedEnvelope = Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(c1_mbit),
                Seconds::from_millis(100.0),
                Bits::from_mbits(c1_mbit / bursts as f64),
                Seconds::from_millis(100.0 / bursts as f64),
                BitsPerSec::from_mbps(100.0),
            )
            .expect("generated source valid"),
        );
        let opts = AdmissionOptions::beta_search(CacConfig::fast());
        let mut s = NetworkState::new(HetNetwork::paper_topology());
        s.set_decision_tracing(true);

        for k in 0..requests {
            let src_ring = (seed + k) % 3;
            let spec = ConnectionSpec {
                source: HostId { ring: src_ring, station: (seed / 3 + k) % 4 },
                // Different ring by construction (same-ring is invalid).
                dest: HostId { ring: (src_ring + 1 + k % 2) % 3, station: (seed / 7 + 2 * k) % 4 },
                envelope: Arc::clone(&env),
                deadline: Seconds::from_millis(deadline_ms * (1.0 + 0.25 * k as f64)),
            class: 0,
            };
            let decision = s.admit(spec, &opts).expect("well-formed request");
            let t = s.last_decision_trace().expect("tracing is on");
            prop_assert_eq!(t.admitted, decision.is_admitted());

            if t.admitted {
                // Admit: committed allocation, no binding, a candidate
                // entry with its id and nonnegative slack.
                prop_assert!(t.binding.is_none());
                prop_assert!(t.allocation.is_some());
                let cand = t.candidate().expect("admit evaluated paths");
                prop_assert!(cand.id.is_some());
                prop_assert!(cand.slack.value() >= -1e-12, "slack {}", cand.slack);
            } else {
                // Reject: always a named binding constraint.
                let b = t.binding.as_ref().expect("reject names a binding");
                prop_assert!(
                    matches!(
                        b.kind(),
                        "source_bandwidth" | "dest_bandwidth" | "deadline" | "unstable"
                    ),
                    "unknown binding kind {}",
                    b.kind()
                );
                if let BindingConstraint::DeadlineExceeded { delay, deadline, excess, .. } = b {
                    prop_assert!(excess.value() > 0.0);
                    prop_assert!(
                        (delay.value() - deadline.value() - excess.value()).abs() <= 1e-12
                    );
                }
            }

            for c in &t.connections {
                // The five eq.-7 stage terms sum to the reported total
                // (ulp-scaled tolerance: the total is the same sum
                // computed once in the evaluator).
                let sum: f64 = ServerStage::ALL
                    .iter()
                    .map(|stage| stage.of(&c.report).value())
                    .sum();
                let total = c.report.total.value();
                let eps = 8.0 * f64::EPSILON * total.abs().max(1e-9);
                prop_assert!((sum - total).abs() <= eps, "sum {sum} vs total {total}");
                // Slack is exactly deadline minus total.
                prop_assert!(
                    (c.slack.value() - (c.deadline.value() - total)).abs() <= eps,
                    "slack {} vs {} - {}", c.slack, c.deadline, c.report.total
                );
                // The dominant stage is the largest term.
                for stage in ServerStage::ALL {
                    prop_assert!(stage.of(&c.report) <= c.dominant.of(&c.report));
                }
            }

            // The JSON-lines rendering stays a single well-delimited line.
            let line = t.to_json_line();
            prop_assert!(line.starts_with('{') && line.ends_with('}'));
            prop_assert!(!line.contains('\n'));
        }
    }
}
