//! Exactness of the frontier-tracing region solver: on randomized
//! scenarios — including infeasible/empty regions, tiny grids, and the
//! benchmark configuration — the frontier map is bitwise identical to
//! the dense sweep's, both cells and axes, while doing strictly fewer
//! oracle evaluations whenever the grid is big enough to matter.

use hetnet_cac::cac::CacConfig;
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::delay::PathInput;
use hetnet_cac::network::{HetNetwork, HostId};
use hetnet_cac::region::{sample_region_frontier, sample_region_threads, RegionSample};
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_traffic::envelope::SharedEnvelope;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::sync::Arc;

fn envelope(c1_mbit: f64, bursts: usize) -> SharedEnvelope {
    Arc::new(
        DualPeriodicEnvelope::new(
            Bits::from_mbits(c1_mbit),
            Seconds::from_millis(100.0),
            Bits::from_mbits(c1_mbit / bursts as f64),
            Seconds::from_millis(100.0 / bursts as f64),
            BitsPerSec::from_mbps(100.0),
        )
        .expect("generated source valid"),
    )
}

/// A background connection from ring `k % 3` to the next ring, with a
/// moderate fixed allocation.
fn background(k: usize, c1_mbit: f64) -> PathInput {
    let h = SyncBandwidth::new(Seconds::from_millis(2.2));
    PathInput {
        source: HostId {
            ring: k % 3,
            station: k % 4,
        },
        dest: HostId {
            ring: (k + 1) % 3,
            station: (k + 2) % 4,
        },
        envelope: envelope(c1_mbit, 5),
        h_s: h,
        h_r: h,
        class: 0,
    }
}

fn candidate(c1_mbit: f64, bursts: usize, deadline_ms: f64) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: 0,
            station: 0,
        },
        dest: HostId {
            ring: 1,
            station: 0,
        },
        envelope: envelope(c1_mbit, bursts),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

fn dense(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    grid: usize,
) -> RegionSample {
    sample_region_threads(
        net,
        active,
        spec,
        Seconds::from_millis(7.2),
        Seconds::from_millis(7.2),
        grid,
        &CacConfig::fast(),
        1,
    )
    .expect("well-formed request")
}

fn frontier(
    net: &HetNetwork,
    active: &[PathInput],
    spec: &ConnectionSpec,
    grid: usize,
) -> RegionSample {
    sample_region_frontier(
        net,
        active,
        spec,
        Seconds::from_millis(7.2),
        Seconds::from_millis(7.2),
        grid,
        &CacConfig::fast(),
    )
    .expect("well-formed request")
}

/// Bitwise equality of an allocation axis.
fn axis_bits(axis: &[SyncBandwidth]) -> Vec<u64> {
    axis.iter()
        .map(|h| h.per_rotation().value().to_bits())
        .collect()
}

fn assert_identical(dense: &RegionSample, fast: &RegionSample, label: &str) {
    assert_eq!(
        fast.map.cells(),
        dense.map.cells(),
        "{label}: cells diverged\nfrontier:\n{}\ndense:\n{}",
        fast.map.ascii(),
        dense.map.ascii()
    );
    assert_eq!(
        axis_bits(&fast.map.h_s),
        axis_bits(&dense.map.h_s),
        "{label}: H_S axis diverged"
    );
    assert_eq!(
        axis_bits(&fast.map.h_r),
        axis_bits(&dense.map.h_r),
        "{label}: H_R axis diverged"
    );
}

proptest! {
    // Each case runs a dense sweep plus a frontier trace; keep the case
    // count modest because the dense sweep is the expensive half.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn frontier_matches_dense_on_random_scenarios(
        c1_mbit in 0.8_f64..2.5,
        bursts in 4_usize..12,
        // Spans clearly-infeasible (empty map) through fully-feasible.
        deadline_ms in 1.0_f64..150.0,
        grid in 2_usize..8,
        n_active in 0_usize..5,
    ) {
        let net = HetNetwork::paper_topology();
        let active: Vec<PathInput> =
            (0..n_active).map(|k| background(k, 1.0 + 0.2 * k as f64)).collect();
        let spec = candidate(c1_mbit, bursts, deadline_ms);
        let d = dense(&net, &active, &spec, grid);
        let f = frontier(&net, &active, &spec, grid);
        assert_identical(&d, &f, &format!("grid {grid}, deadline {deadline_ms}ms"));
        prop_assert!(
            f.evals <= d.evals,
            "frontier did {} evals vs dense {}",
            f.evals,
            d.evals
        );
    }
}

#[test]
fn frontier_matches_dense_on_benchmark_grid() {
    // The benchmark configuration: 17×17 cells over 8 active
    // connections. This is the acceptance-criteria scenario: the
    // frontier must do ≤ 1/3 of the dense sweep's evaluations.
    let net = HetNetwork::paper_topology();
    let active: Vec<PathInput> = (0..8)
        .map(|k| background(k, 0.9 + 0.1 * k as f64))
        .collect();
    let spec = candidate(1.8, 6, 80.0);
    let d = dense(&net, &active, &spec, 17);
    let f = frontier(&net, &active, &spec, 17);
    assert_identical(&d, &f, "grid 17");
    assert!(
        !f.fell_back,
        "benchmark region is convex; no fallback expected"
    );
    assert!(
        f.evals * 3 <= d.evals,
        "frontier did {} evals vs dense {} (needs ≤ 1/3)",
        f.evals,
        d.evals
    );
}

#[test]
fn frontier_handles_degenerate_grids() {
    let net = HetNetwork::paper_topology();
    // Empty region (impossible deadline) and full region (lavish
    // deadline) on the smallest legal grid.
    for deadline_ms in [0.01, 400.0] {
        let spec = candidate(1.5, 6, deadline_ms);
        for grid in [2, 3] {
            let d = dense(&net, &[], &spec, grid);
            let f = frontier(&net, &[], &spec, grid);
            assert_identical(&d, &f, &format!("grid {grid}, deadline {deadline_ms}ms"));
        }
    }
}
