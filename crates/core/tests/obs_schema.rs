//! Golden-file schema check for the observability JSON-lines formats.
//!
//! A pinned admission scenario (two admits, a deadline reject, a
//! bandwidth reject, an unstable-server reject, a component failure
//! with teardown, a component-down reject, and a restore) is run with
//! decision tracing on under an installed `hetnet-obs` collector. Every
//! [`DecisionTrace::to_json_line`] line, every obs record from
//! [`Trace::to_json_lines`], and every Prometheus exposition line is
//! reduced to its *shape* — keys, structure, and deterministic string
//! values verbatim, every number replaced by `N` — deduplicated,
//! sorted, and compared against `tests/golden/obs_schema.txt`.
//!
//! The same file also pins the [`hetnet_obs::MetricsRegistry`]
//! OpenMetrics exposition format (`registry` prefix) and the
//! [`hetnet_obs::FlightRecorder`] JSON shape (`flight` prefix),
//! including the span-timeline envelope
//! (`{phase, shard, ledger_version, record}`) embedded in a captured
//! outlier.
//!
//! The shape set is insensitive to timings and eval counts, but any
//! key rename, field addition/removal, or structural change shows up
//! as a diff. After an *intentional* schema change, regenerate with:
//!
//! ```text
//! OBS_SCHEMA_WRITE=1 cargo test -p hetnet-cac --test obs_schema
//! ```

use hetnet_cac::cac::{AdmissionOptions, CacConfig, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{Component, HetNetwork, HostId, RingId};
use hetnet_fddi::ring::SyncBandwidth;
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

fn spec(src: (usize, usize), dst: (usize, usize), deadline_ms: f64) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: src.0,
            station: src.1,
        },
        dest: HostId {
            ring: dst.0,
            station: dst.1,
        },
        envelope: Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(2.0),
                Seconds::from_millis(100.0),
                Bits::from_mbits(0.25),
                Seconds::from_millis(10.0),
                BitsPerSec::from_mbps(100.0),
            )
            .unwrap(),
        ),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

/// Reduces one JSON (or Prometheus) line to its schema shape: strings
/// stay verbatim (they are deterministic in the pinned scenario),
/// every number — including inside Prometheus label-free values —
/// becomes `N`.
fn shape(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str(&line[start..i]);
            }
            b'0'..=b'9' | b'-' => {
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                out.push('N');
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

#[test]
fn exporter_schemas_match_golden_file() {
    let beta = AdmissionOptions::beta_search(CacConfig::fast());
    let whole = SyncBandwidth::new(Seconds::from_millis(8.0));
    let tiny = SyncBandwidth::new(Seconds::from_micros(200.0));
    let fixed_big = AdmissionOptions::fixed(CacConfig::fast(), whole, whole);
    let fixed_tiny = AdmissionOptions::fixed(CacConfig::fast(), tiny, tiny);

    let (decision_lines, trace) = hetnet_obs::collect(1 << 14, || {
        let mut s = NetworkState::new(HetNetwork::paper_topology());
        s.set_decision_tracing(true);
        s.set_fast_path(true).expect("empty state");
        let mut lines = Vec::new();
        // Admit, admit, deadline reject, bandwidth reject, unstable.
        for (sp, opts) in [
            (spec((0, 0), (1, 0), 100.0), &beta),
            (spec((1, 0), (2, 0), 120.0), &beta),
            (spec((0, 1), (1, 1), 1.0), &beta),
            (spec((0, 2), (2, 1), 100.0), &fixed_big),
            (spec((0, 3), (2, 2), 100.0), &fixed_tiny),
        ] {
            s.admit(sp, opts).expect("well-formed request");
            lines.push(
                s.last_decision_trace()
                    .expect("tracing is on")
                    .to_json_line(),
            );
        }
        // Fail ring 1 (tears down both admitted connections), observe a
        // component-down reject, then restore.
        let report = s
            .set_component_down(Component::Ring(RingId(1)))
            .expect("known component");
        assert_eq!(report.torn.len(), 2);
        s.admit(spec((1, 2), (2, 3), 100.0), &beta)
            .expect("well-formed request");
        lines.push(
            s.last_decision_trace()
                .expect("tracing is on")
                .to_json_line(),
        );
        s.set_component_up(Component::Ring(RingId(1)))
            .expect("known component");
        lines
    });
    assert_eq!(trace.dropped(), 0, "capacity too small for the scenario");

    let mut shapes: BTreeSet<String> = BTreeSet::new();
    for line in &decision_lines {
        shapes.insert(format!("decision {}", shape(line)));
    }
    for line in trace.to_json_lines().lines() {
        shapes.insert(format!("obs {}", shape(line)));
    }
    for line in trace.to_prometheus().lines() {
        shapes.insert(format!("prom {}", shape(line)));
    }

    // Registry exposition schema: one family of each kind, labelled
    // and label-free, so every header/sample form appears.
    let registry = hetnet_obs::MetricsRegistry::new();
    registry
        .counter(
            "hetnet_decisions_total",
            "Admission decisions, by outcome.",
            &[("outcome", "admit")],
        )
        .add(3);
    registry
        .gauge(
            "hetnet_active_connections",
            "Connections currently admitted.",
            &[],
        )
        .set(2.0);
    let latency = registry.histogram(
        "hetnet_decision_latency_seconds",
        "Wall-clock admission decision latency.",
        &[],
    );
    latency.observe(1e-4);
    latency.observe(2e-4);
    for line in registry.to_openmetrics().lines() {
        shapes.insert(format!("registry {}", shape(line)));
    }

    // Flight-recorder schema: one conflict outlier carrying both
    // payloads — a real decision trace and a span-timeline envelope.
    let flight = hetnet_obs::FlightRecorder::new(4, 1_000_000);
    flight.observe(
        &hetnet_obs::FlightObservation {
            correlation: 7,
            shard: Some(1),
            at_seconds: 3.5,
            latency_seconds: 2e-4,
            conflict: true,
            reconfig: false,
            reject_class: Some("deadline"),
        },
        || {
            (
                decision_lines[0].clone(),
                "[{\"phase\":\"speculate\",\"shard\":1,\"ledger_version\":7,\
                 \"record\":{\"seq\":0,\"at_ns\":1,\"kind\":\"event\",\
                 \"name\":\"probe\",\"span\":0,\"fields\":{}}}]"
                    .to_string(),
            )
        },
    );
    shapes.insert(format!("flight {}", shape(&flight.to_json())));

    let mut rendered = String::new();
    for s in &shapes {
        rendered.push_str(s);
        rendered.push('\n');
    }

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_schema.txt");
    if std::env::var_os("OBS_SCHEMA_WRITE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        eprintln!("regenerated {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with OBS_SCHEMA_WRITE=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "exporter schema drifted from {}; if the change is intentional, \
         regenerate with OBS_SCHEMA_WRITE=1",
        golden_path.display()
    );
}
