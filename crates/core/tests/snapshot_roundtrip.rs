//! Snapshot losslessness: `restore(snapshot(s))` reproduces a state
//! observably identical to `s` — same JSON rendering (bit-identical
//! numeric fields), same per-ring availability bits, and the same
//! admit/reject outcome on a randomized churn replay. A pinned golden
//! snapshot locks the JSON format (and, through shortest-roundtrip
//! float formatting, the exact bits) against drift.
//!
//! Regenerate the golden file with `SNAPSHOT_WRITE=1 cargo test -p
//! hetnet-cac --test snapshot_roundtrip` after an intentional format
//! change, and say why in the commit.

use hetnet_cac::cac::{AdmissionOptions, CacConfig, Decision, NetworkState};
use hetnet_cac::connection::ConnectionSpec;
use hetnet_cac::network::{Component, HetNetwork, HostId, RingId};
use hetnet_traffic::models::DualPeriodicEnvelope;
use hetnet_traffic::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

fn spec(
    src: (usize, usize),
    dst: (usize, usize),
    deadline_ms: f64,
    c1_mbit: f64,
) -> ConnectionSpec {
    ConnectionSpec {
        source: HostId {
            ring: src.0,
            station: src.1,
        },
        dest: HostId {
            ring: dst.0,
            station: dst.1,
        },
        envelope: Arc::new(
            DualPeriodicEnvelope::new(
                Bits::from_mbits(c1_mbit),
                Seconds::from_millis(100.0),
                Bits::from_mbits(c1_mbit / 8.0),
                Seconds::from_millis(12.5),
                BitsPerSec::from_mbps(100.0),
            )
            .expect("valid source"),
        ),
        deadline: Seconds::from_millis(deadline_ms),
        class: 0,
    }
}

/// Drives a deterministic mixed scenario (admits, a teardown, a
/// failure) and returns the state.
fn pinned_state() -> NetworkState {
    let mut s = NetworkState::new(HetNetwork::paper_topology());
    let opts = AdmissionOptions::beta_search(CacConfig::fast());
    s.set_clock(Seconds::new(3.25));
    assert!(s
        .admit(spec((0, 0), (1, 0), 100.0, 2.0), &opts)
        .unwrap()
        .is_admitted());
    s.set_clock(Seconds::new(7.5));
    assert!(s
        .admit(spec((1, 1), (2, 0), 90.0, 1.5), &opts)
        .unwrap()
        .is_admitted());
    s.set_clock(Seconds::new(11.0));
    assert!(s
        .admit(spec((2, 1), (0, 2), 120.0, 1.0), &opts)
        .unwrap()
        .is_admitted());
    // One infeasible request (counted in decision_seq, no state change).
    assert!(!s
        .admit(spec((0, 3), (2, 3), 1.0, 2.0), &opts)
        .unwrap()
        .is_admitted());
    s.set_component_down(Component::IfDev(RingId(1))).unwrap();
    s
}

#[test]
fn pinned_snapshot_matches_golden() {
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/state_snapshot.json");
    let json = pinned_state().snapshot().to_json();
    if std::env::var_os("SNAPSHOT_WRITE").is_some() {
        std::fs::write(&golden, format!("{json}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .expect("golden snapshot missing; regenerate with SNAPSHOT_WRITE=1");
    assert_eq!(
        json,
        want.trim_end(),
        "snapshot JSON drifted from the pinned golden; if intentional, \
         regenerate with SNAPSHOT_WRITE=1 and explain in the commit"
    );
}

#[test]
fn pinned_snapshot_restores_bit_identically() {
    let s = pinned_state();
    let snap = s.snapshot();
    let restored = NetworkState::from_snapshot(HetNetwork::paper_topology(), &snap).unwrap();
    assert_eq!(restored.snapshot().to_json(), snap.to_json());
    for ring in 0..3 {
        assert_eq!(
            restored.available_on(ring).value().to_bits(),
            s.available_on(ring).value().to_bits(),
            "ring {ring} availability drifted through restore"
        );
    }
    assert_eq!(restored.down_components(), s.down_components());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized round-trip: after a random admission history (some of
    /// which reject) and an optional component failure, the restored
    /// state matches bit-for-bit and decides the next request
    /// identically.
    #[test]
    fn restore_reproduces_state_and_decisions(
        seed in 0_u64..1_000_000,
        n_requests in 2_usize..10,
        // 0..3 fail that ring; 3 injects no fault.
        fail_ring in 0_usize..4,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = AdmissionOptions::beta_search(CacConfig::fast());
        let mut s = NetworkState::new(HetNetwork::paper_topology());
        for i in 0..n_requests {
            let src_ring = rng.gen_range(0..3usize);
            let mut dst_ring = rng.gen_range(0..3usize);
            if dst_ring == src_ring {
                dst_ring = (dst_ring + 1) % 3;
            }
            let sp = spec(
                (src_ring, rng.gen_range(0..4usize)),
                (dst_ring, rng.gen_range(0..4usize)),
                rng.gen_range(40.0..160.0),
                rng.gen_range(0.5..2.5),
            );
            s.set_clock(Seconds::new(i as f64));
            let _ = s.admit(sp, &opts).unwrap();
        }
        if fail_ring < 3 {
            s.set_component_down(Component::Ring(RingId(fail_ring)))
                .unwrap();
        }
        let snap = s.snapshot();
        let mut restored =
            NetworkState::from_snapshot(HetNetwork::paper_topology(), &snap).unwrap();
        prop_assert_eq!(restored.snapshot().to_json(), snap.to_json());
        for ring in 0..3 {
            prop_assert_eq!(
                restored.available_on(ring).value().to_bits(),
                s.available_on(ring).value().to_bits()
            );
        }
        // The next decision (chosen to cross rings that may be down or
        // loaded) is identical in both copies, including allocations.
        let probe = spec(
            (0, rng.gen_range(0..4usize)),
            (rng.gen_range(1..3usize), 0),
            rng.gen_range(40.0..160.0),
            rng.gen_range(0.5..2.5),
        );
        let a = s.admit(probe.clone(), &opts).unwrap();
        let b = restored.admit(probe, &opts).unwrap();
        match (a, b) {
            (
                Decision::Admitted { id: ia, h_s: ha, h_r: ra, delay_bound: da },
                Decision::Admitted { id: ib, h_s: hb, h_r: rb, delay_bound: db },
            ) => {
                prop_assert_eq!(ia, ib);
                prop_assert_eq!(
                    ha.per_rotation().value().to_bits(),
                    hb.per_rotation().value().to_bits()
                );
                prop_assert_eq!(
                    ra.per_rotation().value().to_bits(),
                    rb.per_rotation().value().to_bits()
                );
                prop_assert_eq!(da.value().to_bits(), db.value().to_bits());
            }
            (Decision::Rejected(ra), Decision::Rejected(rb)) => {
                prop_assert_eq!(ra.to_string(), rb.to_string());
            }
            (a, b) => prop_assert!(false, "decisions diverged: {:?} vs {:?}", a, b),
        }
    }
}
