#!/usr/bin/env bash
# Local CI gate: build, test, lint, and smoke-run the benchmark emitter.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_json smoke run"
cargo run --release -p hetnet-bench --bin bench_json -- \
    --quick --out target/BENCH_region.quick.json

echo "==> bench_json gate (maps identical, frontier cheaper than dense)"
python3 - target/BENCH_region.quick.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
if bench["maps_identical"] is not True:
    sys.exit("FAIL: solver maps are not bit-identical")
dense, frontier = bench["dense_evals"], bench["frontier_evals"]
if frontier >= dense:
    sys.exit(f"FAIL: frontier did {frontier} evals, dense sweep {dense}")
print(f"ok: maps identical, frontier evals {frontier} < dense {dense}")
EOF
echo "==> all checks passed"
