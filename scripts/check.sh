#!/usr/bin/env bash
# Local CI gate: build, test, lint, and smoke-run the benchmark emitter.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_json smoke run"
cargo run --release -p hetnet-bench --bin bench_json -- \
    --quick --out target/BENCH_region.quick.json

echo "==> bench_json gate (maps identical, frontier cheaper than dense, churn smoke)"
python3 - target/BENCH_region.quick.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
if bench["maps_identical"] is not True:
    sys.exit("FAIL: solver maps are not bit-identical")
dense, frontier = bench["dense_evals"], bench["frontier_evals"]
if frontier >= dense:
    sys.exit(f"FAIL: frontier did {frontier} evals, dense sweep {dense}")
print(f"ok: maps identical, frontier evals {frontier} < dense {dense}")

# Churn smoke: the fixed-seed service run must exercise both decision
# paths and keep the audit log complete.
churn = bench["churn"]
if churn["admitted"] <= 0:
    sys.exit("FAIL: churn run admitted nothing")
if churn["rejected"] <= 0:
    sys.exit("FAIL: churn run rejected nothing (load too light to mean anything)")
if churn["audit_len"] != churn["requests"]:
    sys.exit(f"FAIL: audit log has {churn['audit_len']} entries for {churn['requests']} requests")
if not (0.0 < churn["blocking_probability"] < 1.0):
    sys.exit(f"FAIL: degenerate blocking probability {churn['blocking_probability']}")
print(
    f"ok: churn {churn['requests']} requests, {churn['admitted']} admitted, "
    f"{churn['rejected']} rejected, p99 {churn['latency']['p99_us']:.1f} us"
)
EOF

echo "==> deprecated-API gate (legacy request/request_fixed quarantined to core compat tests)"
# clippy -D warnings already fails any *call* to the deprecated wrappers;
# this keeps people from silencing it: allow(deprecated) may appear only
# in crates/core/src/cac.rs, where the wrappers and their compat tests live.
if grep -rn "allow(deprecated)" --include="*.rs" crates src tests examples \
    | grep -v "^crates/core/src/cac.rs:"; then
    echo "FAIL: allow(deprecated) outside crates/core/src/cac.rs"
    exit 1
fi
echo "ok: no deprecated-API escapes"
echo "==> all checks passed"
