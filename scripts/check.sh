#!/usr/bin/env bash
# Local CI gate: build, test, lint, and smoke-run the benchmark emitter.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_json smoke run"
cargo run --release -p hetnet-bench --bin bench_json -- \
    --quick --out target/BENCH_region.quick.json
echo "==> all checks passed"
