#!/usr/bin/env bash
# Local CI gate: build, test, lint, and smoke-run the benchmark emitter.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> hetnet-obs compiles out cleanly (--no-default-features)"
cargo build --release -p hetnet-obs --no-default-features

echo "==> obs-schema gate (exporter JSON-lines shapes match the golden file)"
cargo test --release -p hetnet-cac --test obs_schema -q

echo "==> bench_json smoke run"
cargo run --release -p hetnet-bench --bin bench_json -- \
    --quick --out target/BENCH_region.quick.json

echo "==> bench_json gate (maps identical, frontier cheaper than dense, churn smoke)"
python3 - target/BENCH_region.quick.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
if bench["maps_identical"] is not True:
    sys.exit("FAIL: solver maps are not bit-identical")
dense, frontier = bench["dense_evals"], bench["frontier_evals"]
if frontier >= dense:
    sys.exit(f"FAIL: frontier did {frontier} evals, dense sweep {dense}")
print(f"ok: maps identical, frontier evals {frontier} < dense {dense}")

# Churn smoke: the fixed-seed service run must exercise both decision
# paths and keep the audit log complete.
churn = bench["churn"]
if churn["admitted"] <= 0:
    sys.exit("FAIL: churn run admitted nothing")
if churn["rejected"] <= 0:
    sys.exit("FAIL: churn run rejected nothing (load too light to mean anything)")
if churn["audit_len"] != churn["requests"]:
    sys.exit(f"FAIL: audit log has {churn['audit_len']} entries for {churn['requests']} requests")
if not (0.0 < churn["blocking_probability"] < 1.0):
    sys.exit(f"FAIL: degenerate blocking probability {churn['blocking_probability']}")
print(
    f"ok: churn {churn['requests']} requests, {churn['admitted']} admitted, "
    f"{churn['rejected']} rejected, p99 {churn['latency']['p99_us']:.1f} us"
)

# Decision-trace attribution: every decision of the churn run must be
# traced and every rejection's trace must name its binding constraint.
da = churn["delay_attribution"]
if da["traced"] != churn["requests"]:
    sys.exit(f"FAIL: {da['traced']} traces for {churn['requests']} churn requests")
if da["rejects_with_binding"] != churn["rejected"]:
    sys.exit(
        f"FAIL: {da['rejects_with_binding']} bindings for {churn['rejected']} rejections"
    )
if da["stages"]["total"]["count"] <= 0:
    sys.exit("FAIL: churn run recorded no per-stage delay decompositions")
print(
    f"ok: churn attribution traced {da['traced']}, "
    f"{da['rejects_with_binding']} rejects all carry bindings"
)

# Observability section: the traced arm must actually produce records,
# and its decision traces must cover every decision and rejection.
obs = bench["obs"]
if obs["trace_records"] <= 0:
    sys.exit("FAIL: enabled-tracing run produced no obs records")
if obs["decision_traces"] != obs["admitted"] + obs["rejected"]:
    sys.exit(
        f"FAIL: {obs['decision_traces']} decision traces for "
        f"{obs['admitted'] + obs['rejected']} decisions"
    )
if obs["rejects_with_binding"] != obs["rejected"]:
    sys.exit(
        f"FAIL: {obs['rejects_with_binding']} bindings for {obs['rejected']} rejections"
    )
print(
    f"ok: obs section {obs['trace_records']} records, "
    f"{obs['decision_traces']} decision traces, "
    f"disabled A/A delta {obs['disabled_delta_pct']:+.2f}%"
)
EOF

echo "==> obs overhead gate (committed BENCH_region.json: disabled tracing is free)"
python3 - BENCH_region.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
obs = bench.get("obs")
if obs is None:
    sys.exit("FAIL: committed BENCH_region.json has no obs section; regenerate it")
# The A/A pair runs the identical disabled-tracing configuration twice
# (best-of-reps, rotated arm order, warmed up), so its delta is the
# machine's timing noise floor by construction. The gate is therefore
# self-calibrating: enabled-tracing overhead must stay within that
# measured floor plus one percentage point. On a quiet machine the
# floor is a fraction of a percent and this is effectively a 1% gate;
# on a throttled shared core it still catches a real regression without
# failing on noise the identical-config pair also exhibits.
floor = abs(obs["disabled_delta_pct"])
overhead = obs["enabled_overhead_pct"]
if overhead >= floor + 1.0:
    sys.exit(
        f"FAIL: enabled-tracing overhead {overhead:+.2f}% exceeds the measured "
        f"A/A noise floor ({floor:.2f}%) by >= 1%; rerun `cargo run --release "
        "-p hetnet-bench --bin bench_json` on a quiet machine or investigate "
        "a real slowdown on the admit path"
    )
print(
    f"ok: enabled-tracing overhead {overhead:+.2f}% within A/A noise floor "
    f"{floor:.2f}% + 1%"
)
EOF

echo "==> deprecated-API gate (legacy request/request_fixed quarantined to core compat tests)"
# clippy -D warnings already fails any *call* to the deprecated wrappers;
# this keeps people from silencing it: allow(deprecated) may appear only
# in crates/core/src/cac.rs, where the wrappers and their compat tests live.
if grep -rn "allow(deprecated)" --include="*.rs" crates src tests examples \
    | grep -v "^crates/core/src/cac.rs:"; then
    echo "FAIL: allow(deprecated) outside crates/core/src/cac.rs"
    exit 1
fi
echo "ok: no deprecated-API escapes"
echo "==> all checks passed"
