#!/usr/bin/env bash
# Local CI gate, stage-addressable so the CI workflow can run stages as
# separate jobs. No Python anywhere: the benchmark-JSON gates live in
# the Rust `bench_gate` binary.
#
# Usage: scripts/check.sh [build|test|lint|reconfig|bench|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

build() {
    echo "==> cargo build --release"
    cargo build --release --workspace

    echo "==> hetnet-obs compiles out cleanly (--no-default-features)"
    cargo build --release -p hetnet-obs --no-default-features
}

test_stage() {
    echo "==> cargo test"
    cargo test --workspace -q

    echo "==> obs-schema gate (exporter JSON-lines shapes match the golden file)"
    cargo test --release -p hetnet-cac --test obs_schema -q

    echo "==> snapshot gate (state snapshot round-trip + pinned golden file)"
    cargo test --release -p hetnet-cac --test snapshot_roundtrip -q

    echo "==> recovery gate (faulted runs replay bit-identically from checkpoints)"
    cargo test --release -p hetnet-service --test churn_replay -q

    echo "==> observability gate (sharded runs with full tracing stay decision-identical)"
    cargo test --release -p hetnet-service --test sharded_replay -q
}

reconfig() {
    echo "==> reconfig certification (retuned state bit-identical to a fresh engine + pinned golden)"
    cargo test --release -p hetnet-cac --test reconfig -q

    echo "==> reconfig recovery gate (checkpointed runs replay through reconfigurations bit for bit)"
    cargo test --release -p hetnet-service --test reconfig_replay -q

    echo "==> autotune sweep/bisection unit gate"
    cargo test --release -p hetnet-sim autotune -q
}

lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (warnings denied)"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> deprecated-API gate (legacy request/request_fixed removed from the public API)"
    # The wrappers are gone; nothing may reintroduce them or re-open the
    # allow(deprecated) quarantine they used to need.
    if grep -rnE "fn request(_fixed)?\(|allow\(deprecated\)" --include="*.rs" \
        crates src tests examples; then
        echo "FAIL: legacy request/request_fixed surface reintroduced"
        exit 1
    fi
    echo "ok: no deprecated-API escapes"
}

bench() {
    echo "==> bench_json smoke run"
    cargo run --release -p hetnet-bench --bin bench_json -- \
        --quick --out target/BENCH_region.quick.json

    echo "==> bench gate (maps identical, frontier cheaper, churn + obs + obs_sharded + fault-recovery smoke)"
    cargo run --release -p hetnet-bench --bin bench_gate -- \
        quick target/BENCH_region.quick.json

    echo "==> committed-benchmark gate (BENCH_region.json: obs + sharded-tracing overhead ceilings + fault recovery)"
    cargo run --release -p hetnet-bench --bin bench_gate -- \
        committed BENCH_region.json

    echo "==> hetnet_top smoke (live telemetry dashboard renders over a short sharded run)"
    cargo run --release -p hetnet-bench --bin hetnet_top -- \
        --rings 16 --requests 400 --rate 30 --period 5 --plain
}

case "$stage" in
    build) build ;;
    test) test_stage ;;
    lint) lint ;;
    reconfig) reconfig ;;
    bench) bench ;;
    all)
        build
        test_stage
        reconfig
        lint
        bench
        echo "==> all checks passed"
        ;;
    *)
        echo "usage: scripts/check.sh [build|test|lint|reconfig|bench|all]" >&2
        exit 2
        ;;
esac
